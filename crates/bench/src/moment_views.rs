//! The `moment_bench` configuration grid and its deterministic summary.
//!
//! The moment benchmark answers the two questions the analytic backend exists for, on every
//! zoo family:
//!
//! * **how much cheaper is it?** — the same dense trace served under S = 16 Monte-Carlo and
//!   under the single-pass moment backend, speedup measured in simulated ticks. The grid is
//!   service-bound on purpose (arrivals every tick, deep batches), so the makespan ratio
//!   reflects the per-request cost model rather than idle waiting;
//! * **how close does it stay?** — per-model deviation of the analytic predictive mean and
//!   entropy from the Monte-Carlo responses over the whole trace, committed as part of
//!   `BENCH_moment_summary.json` so accuracy drift trips the regression gate exactly like a
//!   performance drift would.
//!
//! Everything committed is tick-domain or response bytes — wall clocks never enter the
//! summary (same rule as `serve_views`).

use bnn_models::ModelKind;
use bnn_serve::{
    BatchPolicy, InferenceEngine, ModelSource, ModelSpec, ServeMode, ServeRunReport, WorkloadSpec,
};
use shift_bnn::sweep::json::Json;

/// Weight seed of the frozen posteriors every moment benchmark builds.
pub const MOMENT_WEIGHT_SEED: u64 = 2021;

/// Workload seed of the synthetic open-loop traces.
pub const MOMENT_WORKLOAD_SEED: u64 = 11;

/// Ticks between arrivals: every tick, so the engine is service-bound and the makespan ratio
/// measures the backends' per-request cost, not queue idling.
pub const MOMENT_INTERARRIVAL_TICKS: u64 = 1;

/// The Monte-Carlo sample count the moment backend is compared against.
pub const MOMENT_MC_SAMPLES: usize = 16;

/// Every paper family: the analytic backend must hold its speedup and accuracy on all five.
pub fn moment_models() -> [ModelKind; 5] {
    ModelKind::all()
}

/// The single deep batching policy of the grid (dense arrivals want deep batches; this is
/// what makes the ≥5× simulated speedup claim service-bound rather than batching-bound).
pub fn moment_policy() -> BatchPolicy {
    BatchPolicy { max_batch: 32, max_wait_ticks: 32 }
}

/// One point of the moment grid: (model × serving backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MomentConfig {
    /// The served model family.
    pub kind: ModelKind,
    /// The serving backend this point runs under.
    pub mode: ServeMode,
}

impl MomentConfig {
    /// The frozen-posterior spec this config serves.
    pub fn spec(&self) -> ModelSpec {
        ModelSpec::for_kind(self.kind, MOMENT_WEIGHT_SEED)
    }

    /// The open-loop trace this config is driven with. Both backends of a model share it
    /// (same seed, same inputs, same S field), so their responses are directly comparable.
    pub fn workload(&self, requests: usize) -> WorkloadSpec {
        WorkloadSpec::uniform(
            requests,
            MOMENT_INTERARRIVAL_TICKS,
            MOMENT_MC_SAMPLES,
            MOMENT_WORKLOAD_SEED,
        )
    }
}

/// Enumerates the moment grid, model-major, Monte-Carlo before moment — the order the
/// summary's records are committed in.
pub fn moment_configs() -> Vec<MomentConfig> {
    let mut configs = Vec::new();
    for kind in moment_models() {
        for mode in [ServeMode::MonteCarlo, ServeMode::Moment] {
            configs.push(MomentConfig { kind, mode });
        }
    }
    configs
}

/// Requests per config: the full grid's trace length, or the CI-reduced one.
pub fn moment_request_count(reduced: bool) -> usize {
    if reduced {
        32
    } else {
        128
    }
}

/// Runs every grid config on `workers` pool threads and returns `(config, report)` pairs in
/// grid order. Every value a report carries except the recorded worker count is
/// worker-invariant, so any `workers` reproduces the committed summary.
pub fn run_moment_grid(reduced: bool, workers: usize) -> Vec<(MomentConfig, ServeRunReport)> {
    let requests = moment_request_count(reduced);
    moment_configs()
        .into_iter()
        .map(|config| {
            let spec = config.spec();
            let trace = config.workload(requests).generate(&spec);
            let engine = InferenceEngine::from_source_with_mode(
                ModelSource::Spec(spec),
                config.mode,
                moment_policy(),
                workers,
            );
            (config, engine.run(&trace))
        })
        .collect()
}

/// The simulated moment-vs-Monte-Carlo speedup of each grid point: the model's S = 16 MC
/// sibling's makespan over its own (1.0 for the MC baseline itself). This is the committed
/// headline: the analytic backend must clear 5× on every family.
pub fn speedup_vs_mc16(results: &[(MomentConfig, ServeRunReport)], index: usize) -> f64 {
    let (config, report) = &results[index];
    let baseline = results
        .iter()
        .find(|(c, _)| c.kind == config.kind && c.mode == ServeMode::MonteCarlo)
        .expect("every model slice contains the S=16 Monte-Carlo baseline");
    baseline.1.makespan_ticks as f64 / report.makespan_ticks as f64
}

/// Maximum per-class deviation of a moment run's predictive means from its Monte-Carlo
/// sibling's, over every request of the shared trace.
pub fn mean_deviation_vs_mc(mc: &ServeRunReport, moment: &ServeRunReport) -> f64 {
    mc.responses
        .iter()
        .zip(&moment.responses)
        .flat_map(|(a, b)| a.mean.iter().zip(&b.mean))
        .map(|(a, b)| (*a as f64 - *b as f64).abs())
        .fold(0.0, f64::max)
}

/// Maximum deviation of a moment run's predictive entropies from its Monte-Carlo sibling's.
pub fn entropy_deviation_vs_mc(mc: &ServeRunReport, moment: &ServeRunReport) -> f64 {
    mc.responses
        .iter()
        .zip(&moment.responses)
        .map(|(a, b)| (a.entropy as f64 - b.entropy as f64).abs())
        .fold(0.0, f64::max)
}

/// Builds the deterministic summary document from a grid run — the committed
/// `BENCH_moment_summary.json` regression baseline.
pub fn moment_summary_json(results: &[(MomentConfig, ServeRunReport)], reduced: bool) -> Json {
    let records: Vec<Json> = results
        .iter()
        .enumerate()
        .map(|(i, (config, report))| {
            let mut fields = vec![
                ("model", Json::Str(report.model.clone())),
                ("mode", Json::Str(config.mode.label().into())),
                ("batches", Json::UInt(report.batches.len() as u64)),
                ("mean_batch_size", Json::Float(report.mean_batch_size())),
                ("makespan_ticks", Json::UInt(report.makespan_ticks)),
                ("p50_ticks", Json::UInt(report.latency_percentile(0.50))),
                ("p95_ticks", Json::UInt(report.latency_percentile(0.95))),
                ("p99_ticks", Json::UInt(report.latency_percentile(0.99))),
                ("throughput_per_kilotick", Json::Float(report.throughput_per_kilotick())),
                ("speedup_vs_mc16_sim", Json::Float(speedup_vs_mc16(results, i))),
                ("responses_digest", Json::Str(report.responses_digest())),
            ];
            if config.mode == ServeMode::Moment {
                let (_, mc) = &results[i - 1];
                fields.push(("mean_dev_vs_mc16", Json::Float(mean_deviation_vs_mc(mc, report))));
                fields.push((
                    "entropy_dev_vs_mc16",
                    Json::Float(entropy_deviation_vs_mc(mc, report)),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("shift-bnn-moment-summary/v1".into())),
        ("reduced", Json::Bool(reduced)),
        (
            "workload",
            Json::obj([
                ("requests", Json::UInt(moment_request_count(reduced) as u64)),
                ("interarrival_ticks", Json::UInt(MOMENT_INTERARRIVAL_TICKS)),
                ("mc_samples", Json::UInt(MOMENT_MC_SAMPLES as u64)),
                ("policy", Json::Str(moment_policy().label())),
                ("seed", Json::UInt(MOMENT_WORKLOAD_SEED)),
                ("weight_seed", Json::UInt(MOMENT_WEIGHT_SEED)),
            ]),
        ),
        ("records", Json::Array(records)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_model_major_with_mc_leading_each_slice() {
        let configs = moment_configs();
        assert_eq!(configs.len(), 5 * 2);
        for pair in configs.chunks(2) {
            assert_eq!(pair[0].kind, pair[1].kind);
            assert_eq!(pair[0].mode, ServeMode::MonteCarlo);
            assert_eq!(pair[1].mode, ServeMode::Moment);
        }
    }

    #[test]
    fn reduced_grid_summary_is_worker_invariant() {
        let a = moment_summary_json(&run_moment_grid(true, 1), true);
        let b = moment_summary_json(&run_moment_grid(true, 3), true);
        assert_eq!(a.to_pretty(), b.to_pretty());
    }

    #[test]
    fn moment_backend_clears_five_x_on_every_family() {
        let results = run_moment_grid(true, 2);
        for (i, (config, report)) in results.iter().enumerate() {
            let speedup = speedup_vs_mc16(&results, i);
            match config.mode {
                ServeMode::MonteCarlo => assert_eq!(speedup, 1.0),
                ServeMode::Moment => {
                    assert!(
                        speedup >= 5.0,
                        "{} {}: simulated speedup {speedup} below the 5x gate",
                        config.kind.paper_name(),
                        config.mode.label()
                    );
                    assert!(report.responses.iter().all(|r| r.samples == 0));
                }
            }
        }
    }

    #[test]
    fn committed_accuracy_records_stay_within_the_validation_gates() {
        // Same per-family gates as `moment_validation.rs` in bnn-serve: tight for the MLP
        // proxy, looser for the conv families (shared-weight spatial correlation in MC).
        let results = run_moment_grid(true, 2);
        for pair in results.chunks(2) {
            let (config, mc) = &pair[0];
            let (_, moment) = &pair[1];
            let (mean_tol, entropy_tol) =
                if config.spec().proxy.conv { (0.15, 0.2) } else { (0.05, 0.05) };
            let mean_dev = mean_deviation_vs_mc(mc, moment);
            let entropy_dev = entropy_deviation_vs_mc(mc, moment);
            assert!(
                mean_dev < mean_tol && entropy_dev < entropy_tol,
                "{}: mean dev {mean_dev}, entropy dev {entropy_dev}",
                config.kind.paper_name()
            );
        }
    }
}
