//! The `cluster_bench` configuration grid and its deterministic summary.
//!
//! Same division of labor as [`crate::serve_views`]: the binary drives the grid and measures
//! wall clocks; this module owns what the grid *is* and which scalars are deterministic
//! enough to commit (`BENCH_cluster_summary.json`) and regression-check. Everything recorded
//! here is tick-domain — tail latencies (p50/p95/p99/p999), shed and escalation rates,
//! event digests — so the committed summary reproduces bit-for-bit on any machine at any
//! worker count.
//!
//! Two arms:
//!
//! * the **executed grid** — routing policy × arrival process on a 4-shard B-MLP cluster,
//!   every request answered by real engines (responses digested into the summary);
//! * the **stress arm** — 250 000-request traces driven through [`Cluster::plan`] (phase A
//!   only, no inference), where p999 becomes a meaningful tail statistic and autoscaling
//!   has room to both activate and drain.

use bnn_serve::{
    ArrivalProcess, AutoscalePolicy, BatchPolicy, Cluster, ClusterConfig, ClusterPlan,
    ClusterRunReport, InferRequest, ModelSource, ModelSpec, RoutingPolicy, ServeMode, WorkloadSpec,
};
use shift_bnn::sweep::json::Json;

/// Weight seed of the frozen posterior every cluster benchmark replicates.
pub const CLUSTER_WEIGHT_SEED: u64 = 2021;

/// Workload seed of the synthetic cluster traces.
pub const CLUSTER_WORKLOAD_SEED: u64 = 11;

/// Ticks between arrivals (before the arrival process shapes them): chosen so a 4-shard
/// cluster runs just under saturation at uniform arrivals (round-robin hands each shard one
/// request per 96 ticks against an ~85-tick singleton service time) — steady traffic is
/// served nearly in full while spikes and demand waves overflow the queues and shed.
pub const CLUSTER_INTERARRIVAL_TICKS: u64 = 24;

/// Monte-Carlo samples each executed-grid request asks for (the two-tier policy overrides
/// this with its own low/high counts).
pub const CLUSTER_SAMPLES: usize = 4;

/// Shards of every benchmark cluster (two-tier: 3 low + 1 high).
pub const CLUSTER_SHARDS: usize = 4;

/// Per-shard backlog bound of every benchmark cluster.
pub const CLUSTER_QUEUE_CAP: usize = 32;

/// The routing policies the grid sweeps. The two-tier threshold sits in the upper third of
/// the low-pass (S = 1) predictive-entropy distribution — the proxy posterior's predictions
/// cluster near ln(4) ≈ 1.386 nats — so escalation is a real filter, not a pass-through.
pub fn cluster_policies() -> [RoutingPolicy; 3] {
    [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::TwoTier { low_samples: 1, high_samples: 8, entropy_threshold: 1.35 },
    ]
}

/// The arrival processes the grid sweeps.
pub fn cluster_arrivals() -> [ArrivalProcess; 4] {
    [
        ArrivalProcess::Uniform,
        ArrivalProcess::Bursty { mean_burst: 6 },
        ArrivalProcess::Diurnal { cycle: 512 },
        // 150 simultaneous arrivals exceed the cluster's whole queue capacity (4 × 32), so
        // every spike forces queue-full sheds no matter how the router spreads it.
        ArrivalProcess::Adversarial { spike: 150 },
    ]
}

/// One point of the executed grid: (routing policy × arrival process).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterBenchConfig {
    /// How the router picks shards.
    pub routing: RoutingPolicy,
    /// The arrival shape of the trace.
    pub arrival: ArrivalProcess,
}

/// Enumerates the executed grid, policy-major — the order the summary's records are
/// committed in.
pub fn cluster_configs() -> Vec<ClusterBenchConfig> {
    let mut configs = Vec::new();
    for routing in cluster_policies() {
        for arrival in cluster_arrivals() {
            configs.push(ClusterBenchConfig { routing, arrival });
        }
    }
    configs
}

/// Requests per executed-grid config: the full trace length, or the CI-reduced one.
pub fn cluster_request_count(reduced: bool) -> usize {
    if reduced {
        250
    } else {
        1000
    }
}

/// Requests of each stress-arm trace.
pub fn stress_request_count(reduced: bool) -> usize {
    if reduced {
        50_000
    } else {
        250_000
    }
}

/// The shared cluster shape of every benchmark run.
pub fn bench_cluster_config(routing: RoutingPolicy, workers: usize) -> ClusterConfig {
    ClusterConfig {
        source: ModelSource::Spec(ModelSpec::mlp(CLUSTER_WEIGHT_SEED)),
        mode: ServeMode::MonteCarlo,
        shards: CLUSTER_SHARDS,
        workers_per_shard: workers,
        batch: BatchPolicy { max_batch: 8, max_wait_ticks: 16 },
        queue_cap: CLUSTER_QUEUE_CAP,
        deadline_ticks: None,
        routing,
        autoscale: None,
    }
}

fn grid_trace(arrival: ArrivalProcess, requests: usize) -> Vec<InferRequest> {
    let spec = ModelSpec::mlp(CLUSTER_WEIGHT_SEED);
    WorkloadSpec::uniform(
        requests,
        CLUSTER_INTERARRIVAL_TICKS,
        CLUSTER_SAMPLES,
        CLUSTER_WORKLOAD_SEED,
    )
    .with_arrival(arrival)
    .generate(&spec)
}

/// Runs every executed-grid config with `workers` pool threads per shard and returns
/// `(config, report)` pairs in grid order. Every value a report serializes is
/// worker-invariant, so any `workers` reproduces the committed summary.
pub fn run_cluster_grid(
    reduced: bool,
    workers: usize,
) -> Vec<(ClusterBenchConfig, ClusterRunReport)> {
    let requests = cluster_request_count(reduced);
    cluster_configs()
        .into_iter()
        .map(|config| {
            let trace = grid_trace(config.arrival, requests);
            let report = Cluster::new(bench_cluster_config(config.routing, workers)).run(&trace);
            (config, report)
        })
        .collect()
}

/// One point of the stress arm: a plan-only policy × arrival pair with autoscaling enabled.
/// Two-tier is excluded — escalation needs real entropies, which phase A never computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressConfig {
    /// How the router picks shards.
    pub routing: RoutingPolicy,
    /// The arrival shape of the trace.
    pub arrival: ArrivalProcess,
}

/// The stress-arm configurations, in committed order.
pub fn stress_configs() -> Vec<StressConfig> {
    let mut configs = Vec::new();
    for routing in [RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded] {
        for arrival in
            [ArrivalProcess::Bursty { mean_burst: 6 }, ArrivalProcess::Diurnal { cycle: 512 }]
        {
            configs.push(StressConfig { routing, arrival });
        }
    }
    configs
}

/// Plans the stress arm: hundreds of thousands of requests per point, phase A only. Inputs
/// use a 1-element shape — the plan prices batches from ε volume and sample counts, so the
/// tensor payload never matters and trace generation stays cheap.
pub fn run_cluster_stress(reduced: bool) -> Vec<(StressConfig, ClusterPlan)> {
    let requests = stress_request_count(reduced);
    // Drain only when a shard's share of the backlog is essentially idle — a low watermark
    // of 2 ping-pongs between 1 and 2 active shards on bursty traffic.
    let autoscale = AutoscalePolicy {
        interval_ticks: 1024,
        high_watermark: 16,
        low_watermark: 1,
        min_active: 1,
    };
    stress_configs()
        .into_iter()
        .map(|config| {
            let trace = WorkloadSpec::uniform(
                requests,
                CLUSTER_INTERARRIVAL_TICKS,
                CLUSTER_SAMPLES,
                CLUSTER_WORKLOAD_SEED,
            )
            .with_arrival(config.arrival)
            .generate_for_shape(&[1]);
            let mut cluster_config = bench_cluster_config(config.routing, 1);
            cluster_config.autoscale = Some(autoscale);
            let plan = Cluster::new(cluster_config).plan(&trace);
            (config, plan)
        })
        .collect()
}

fn percentile_fields(latencies: &[u64], percentile: impl Fn(f64) -> u64) -> Json {
    let field = |q| if latencies.is_empty() { Json::Null } else { Json::UInt(percentile(q)) };
    Json::obj([
        ("p50", field(0.50)),
        ("p95", field(0.95)),
        ("p99", field(0.99)),
        ("p999", field(0.999)),
    ])
}

/// Builds the deterministic summary document from a grid + stress run — the committed
/// `BENCH_cluster_summary.json` regression baseline.
pub fn cluster_summary_json(
    grid: &[(ClusterBenchConfig, ClusterRunReport)],
    stress: &[(StressConfig, ClusterPlan)],
    reduced: bool,
) -> Json {
    let records: Vec<Json> = grid
        .iter()
        .map(|(config, report)| {
            Json::obj([
                ("routing", Json::Str(config.routing.label().into())),
                ("arrival", Json::Str(config.arrival.label())),
                ("submitted", Json::UInt(report.submitted() as u64)),
                ("answered", Json::UInt(report.answered() as u64)),
                ("shed", Json::UInt(report.sheds.len() as u64)),
                ("shed_rate", Json::Float(report.shed_rate())),
                ("escalated", Json::UInt(report.escalations.len() as u64)),
                ("escalation_rate", Json::Float(report.escalation_rate())),
                ("makespan_ticks", Json::UInt(report.makespan_ticks)),
                (
                    "latency_ticks",
                    percentile_fields(&report.latencies, |q| report.latency_percentile(q)),
                ),
                ("responses_digest", Json::Str(report.responses_digest())),
                ("events_digest", Json::Str(report.events_digest())),
            ])
        })
        .collect();
    let stress_records: Vec<Json> = stress
        .iter()
        .map(|(config, plan)| {
            let peak_active = plan.scale_events.iter().map(|e| e.active).max().unwrap_or(1);
            Json::obj([
                ("routing", Json::Str(config.routing.label().into())),
                ("arrival", Json::Str(config.arrival.label())),
                ("submitted", Json::UInt(plan.outcomes.len() as u64)),
                ("shed", Json::UInt(plan.sheds.len() as u64)),
                ("shed_rate", Json::Float(plan.shed_rate())),
                ("makespan_ticks", Json::UInt(plan.makespan_ticks)),
                (
                    "latency_ticks",
                    percentile_fields(&plan.latencies, |q| plan.latency_percentile(q)),
                ),
                ("scale_events", Json::UInt(plan.scale_events.len() as u64)),
                ("peak_active_shards", Json::UInt(peak_active as u64)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("shift-bnn-cluster-summary/v1".into())),
        ("reduced", Json::Bool(reduced)),
        (
            "cluster",
            Json::obj([
                ("shards", Json::UInt(CLUSTER_SHARDS as u64)),
                ("queue_cap", Json::UInt(CLUSTER_QUEUE_CAP as u64)),
                ("max_batch", Json::UInt(8)),
                ("max_wait_ticks", Json::UInt(16)),
                ("weight_seed", Json::UInt(CLUSTER_WEIGHT_SEED)),
            ]),
        ),
        (
            "workload",
            Json::obj([
                ("requests", Json::UInt(cluster_request_count(reduced) as u64)),
                ("stress_requests", Json::UInt(stress_request_count(reduced) as u64)),
                ("interarrival_ticks", Json::UInt(CLUSTER_INTERARRIVAL_TICKS)),
                ("samples", Json::UInt(CLUSTER_SAMPLES as u64)),
                ("seed", Json::UInt(CLUSTER_WORKLOAD_SEED)),
            ]),
        ),
        ("records", Json::Array(records)),
        ("stress", Json::Array(stress_records)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_policy_major() {
        let configs = cluster_configs();
        assert_eq!(configs.len(), 3 * 4);
        assert_eq!(configs[0].routing.label(), "round_robin");
        assert_eq!(configs[4].routing.label(), "least_loaded");
        assert_eq!(configs[8].routing.label(), "two_tier");
        assert_eq!(configs[0].arrival.label(), "uniform");
    }

    #[test]
    fn reduced_grid_summary_is_worker_invariant() {
        let stress: Vec<(StressConfig, ClusterPlan)> = Vec::new();
        let a = cluster_summary_json(&run_cluster_grid(true, 1), &stress, true);
        let b = cluster_summary_json(&run_cluster_grid(true, 3), &stress, true);
        assert_eq!(a.to_pretty(), b.to_pretty());
    }

    #[test]
    fn adversarial_spikes_shed_while_uniform_mostly_answers() {
        let grid = run_cluster_grid(true, 2);
        for (config, report) in &grid {
            if matches!(config.arrival, ArrivalProcess::Adversarial { .. }) {
                assert!(
                    report.shed_rate() > 0.0,
                    "{}: 150-request spikes must overflow the 4 x cap-32 queues",
                    config.routing.label()
                );
            }
            assert!(report.answered() > 0, "{}: nothing answered", config.routing.label());
        }
        let two_tier = grid.iter().filter(|(c, _)| c.routing.label() == "two_tier");
        for (config, report) in two_tier {
            assert!(
                !report.escalations.is_empty(),
                "two-tier over {} must escalate something",
                config.arrival.label()
            );
        }
    }

    #[test]
    fn stress_plans_scale_and_report_tails() {
        // A miniature stress arm (not the reduced count — this is a unit test) still
        // exercises autoscaling and the percentile fields.
        let autoscale = AutoscalePolicy {
            interval_ticks: 1024,
            high_watermark: 16,
            low_watermark: 2,
            min_active: 1,
        };
        let trace = WorkloadSpec::uniform(
            4000,
            CLUSTER_INTERARRIVAL_TICKS,
            CLUSTER_SAMPLES,
            CLUSTER_WORKLOAD_SEED,
        )
        .with_arrival(ArrivalProcess::Bursty { mean_burst: 6 })
        .generate_for_shape(&[1]);
        let mut config = bench_cluster_config(RoutingPolicy::LeastLoaded, 1);
        config.autoscale = Some(autoscale);
        let plan = Cluster::new(config).plan(&trace);
        assert_eq!(plan.outcomes.len(), 4000);
        assert!(plan.latency_percentile(0.999) >= plan.latency_percentile(0.50));
    }
}
