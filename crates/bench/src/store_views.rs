//! The `store_bench` grid and its deterministic summary.
//!
//! Mirrors the relationship between `serve_bench` and [`crate::serve_views`]: the binary
//! measures wall clocks; this module owns what the benchmark *is* and which scalars are
//! deterministic enough to commit (`BENCH_store_summary.json`) and regression-check —
//! checkpoint sizes and digests, registry version numbers, hot-swap tick boundaries, and the
//! response digests proving disk-loaded replicas answer exactly like in-memory ones.
//! Save/load throughput never enters the summary.
//!
//! This is also where the registry meets **sweep-trained models**: each benchmarked artifact
//! is a `TrainableProxy` (the same scaled-down family geometries the Table 1 precision study
//! trains) taken through train → checkpoint → publish → load → serve → hot-swap.

use bnn_models::zoo::TrainableProxy;
use bnn_models::ModelKind;
use bnn_serve::{
    BatchPolicy, InferenceEngine, ModelSource, ServeRunReport, VersionSwap, WorkloadSpec,
};
use bnn_store::{Checkpoint, ModelRegistry};
use bnn_train::data::SyntheticDataset;
use bnn_train::variational::BayesConfig;
use bnn_train::{Network, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn::sweep::json::Json;
use std::path::Path;

/// Weight/dataset seed of every store benchmark (training is deterministic in it).
pub const STORE_SEED: u64 = 2027;

/// Training steps of the v1 artifact; v2 continues (from v1's training checkpoint) for the
/// same count again — so v2 is also a live demonstration of resume-from-checkpoint.
pub const STORE_TRAIN_STEPS: usize = 6;

/// The tick the benchmark schedules its hot-swap at.
pub const STORE_SWAP_TICK: u64 = 60;

/// Requests in the serving trace.
pub const STORE_REQUESTS: usize = 24;

/// The model families the store grid exercises (the two distinct proxy architectures).
pub const STORE_MODELS: [ModelKind; 2] = [ModelKind::Mlp, ModelKind::LeNet];

/// Builds the family proxy's untrained network.
fn proxy_network(proxy: &TrainableProxy, rng: &mut StdRng) -> Network {
    if proxy.conv {
        let shape = [proxy.input[0], proxy.input[1], proxy.input[2]];
        Network::bayes_lenet(&shape, proxy.classes, BayesConfig::default(), rng)
    } else {
        Network::bayes_mlp(
            proxy.input[0],
            &proxy.hidden,
            proxy.classes,
            BayesConfig::default(),
            rng,
        )
    }
}

/// Trains the family proxy for [`STORE_TRAIN_STEPS`] steps and captures the full training
/// checkpoint (deterministic in [`STORE_SEED`]).
pub fn train_v1(kind: ModelKind) -> Checkpoint {
    let proxy = kind.trainable_proxy();
    let mut rng = StdRng::seed_from_u64(STORE_SEED);
    let network = proxy_network(&proxy, &mut rng);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig { samples: 2, learning_rate: 0.05, seed: STORE_SEED, ..Default::default() },
    )
    .expect("default GRNG construction cannot fail");
    let dataset = dataset_for(&proxy);
    for step in 0..STORE_TRAIN_STEPS {
        let (image, label) = dataset.example(step % dataset.len());
        trainer.train_example(image, label).expect("proxy shapes are consistent");
    }
    Checkpoint::from_trainer(&trainer)
}

/// Resumes training from a v1 checkpoint for another [`STORE_TRAIN_STEPS`] steps — the v2
/// artifact, produced the way production retraining would produce it.
pub fn train_v2(kind: ModelKind, v1: &Checkpoint) -> Checkpoint {
    let proxy = kind.trainable_proxy();
    let dataset = dataset_for(&proxy);
    let mut trainer = v1.resume_trainer().expect("v1 is a validated training checkpoint");
    for _ in 0..STORE_TRAIN_STEPS {
        let step = trainer.steps() as usize;
        let (image, label) = dataset.example(step % dataset.len());
        trainer.train_example(image, label).expect("proxy shapes are consistent");
    }
    Checkpoint::from_trainer(&trainer)
}

fn dataset_for(proxy: &TrainableProxy) -> SyntheticDataset {
    SyntheticDataset::generate(&proxy.input, proxy.classes, 2, 0.2, STORE_SEED)
}

/// The serving trace every store benchmark drives.
pub fn store_trace(proxy: &TrainableProxy) -> Vec<bnn_serve::InferRequest> {
    WorkloadSpec::uniform(STORE_REQUESTS, 3, 4, STORE_SEED).generate_for_shape(&proxy.input)
}

/// One family's results: the deterministic facts (sizes, digests, versions, tick boundaries)
/// plus the wall-clock timings of the persistence operations.
#[derive(Debug, Clone)]
pub struct StoreBenchResult {
    /// Registry model name (`"bmlp"` / `"blenet"`).
    pub name: String,
    /// Paper family name.
    pub family: &'static str,
    /// Serialized checkpoint size of v1, in bytes.
    pub v1_bytes: usize,
    /// Container digest of v1.
    pub v1_digest: String,
    /// Serialized checkpoint size of v2, in bytes.
    pub v2_bytes: usize,
    /// Container digest of v2.
    pub v2_digest: String,
    /// Registry versions allocated (must be `(1, 2)` in a fresh root).
    pub versions: (u32, u32),
    /// Tick the hot-swap was scheduled at.
    pub swap_requested_tick: u64,
    /// Service-start tick of the first batch the new version answered.
    pub swap_boundary_tick: u64,
    /// Response digest of the hot-swapped run.
    pub swapped_responses_digest: String,
    /// Response digest of the v1-only run.
    pub v1_responses_digest: String,
    /// Response digest of the v2-only run.
    pub v2_responses_digest: String,
    /// Best-of-reps encode time, nanoseconds.
    pub encode_ns: f64,
    /// Best-of-reps decode (with full validation) time, nanoseconds.
    pub decode_ns: f64,
    /// Best-of-reps registry publish time, nanoseconds.
    pub publish_ns: f64,
    /// Best-of-reps registry load time, nanoseconds.
    pub load_ns: f64,
}

impl StoreBenchResult {
    /// Hot-swap activation latency in ticks (boundary − request).
    pub fn swap_latency_ticks(&self) -> u64 {
        self.swap_boundary_tick - self.swap_requested_tick
    }

    /// Encode throughput in MB/s.
    pub fn encode_mb_per_s(&self) -> f64 {
        self.v1_bytes as f64 / 1e6 / (self.encode_ns / 1e9)
    }

    /// Decode (validated) throughput in MB/s.
    pub fn decode_mb_per_s(&self) -> f64 {
        self.v1_bytes as f64 / 1e6 / (self.decode_ns / 1e9)
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Runs the full store benchmark into a **fresh** registry under `registry_root` (the root is
/// recreated so version numbers are reproducible).
///
/// Beyond timing, this asserts the store's contracts at runtime, exactly like `serve_bench`
/// asserts response identity: byte-identical checkpoint round trips, byte-identical
/// disk-vs-memory serving at 1 and N workers, and a version sequence that steps 0 → 1 at one
/// deterministic boundary.
///
/// # Panics
///
/// Panics when any contract is violated or the registry root cannot be (re)created.
pub fn run_store_bench(registry_root: &Path, reps: usize) -> Vec<StoreBenchResult> {
    let _ = std::fs::remove_dir_all(registry_root);
    let registry = ModelRegistry::open(registry_root).expect("create registry root");
    STORE_MODELS.iter().map(|&kind| bench_family(&registry, kind, reps)).collect()
}

fn registry_name(kind: ModelKind) -> String {
    kind.paper_name().to_ascii_lowercase().replace('-', "")
}

fn bench_family(registry: &ModelRegistry, kind: ModelKind, reps: usize) -> StoreBenchResult {
    let proxy = kind.trainable_proxy();
    let name = registry_name(kind);

    // Train v1, resume-train v2 — the artifact pair a rolling deployment produces.
    let v1 = train_v1(kind);
    let v2 = train_v2(kind, &v1);
    let v1_encoded = v1.to_bytes();
    let v2_encoded = v2.to_bytes();
    let decoded = Checkpoint::from_bytes(&v1_encoded).expect("own bytes decode");
    assert_eq!(decoded, v1, "checkpoint round trip must be lossless");

    // Persistence timings (wall clock; full report only).
    let encode_ns = best_of(reps, || v1.to_bytes());
    let decode_ns = best_of(reps, || Checkpoint::from_bytes(&v1_encoded).expect("valid bytes"));
    let version_1 = registry.publish(&name, &v1).expect("publish v1");
    let publish_ns = best_of(reps, || {
        let scratch_name = format!("{name}-scratch");
        registry.publish(&scratch_name, &v1).expect("publish scratch")
    });
    let load_ns = best_of(reps, || registry.load(&name, version_1).expect("load v1"));
    let version_2 = registry.publish(&name, &v2).expect("publish v2");

    // Serve: disk-loaded replicas must answer exactly like in-memory ones, at 1 and N
    // workers, and the hot-swap must split the trace at one deterministic boundary.
    let trace = store_trace(&proxy);
    let policy = BatchPolicy { max_batch: 4, max_wait_ticks: 8 };
    let (_, v1_source) =
        registry.serve_source(&name, Some(version_1), proxy.input.clone()).expect("serve v1");
    let (_, v2_source) =
        registry.serve_source(&name, Some(version_2), proxy.input.clone()).expect("serve v2");
    let in_memory = ModelSource::Checkpoint(
        bnn_serve::CheckpointReplica::new(
            format!("{name}@v{version_1}"),
            v1.network.clone(),
            proxy.input.clone(),
        )
        .expect("validated checkpoint"),
    );
    let memory_run = InferenceEngine::from_source(in_memory, policy, 1).run(&trace);
    let disk_run = InferenceEngine::from_source(v1_source.clone(), policy, 2).run(&trace);
    assert_eq!(
        memory_run.responses_json(),
        disk_run.responses_json(),
        "{name}: disk-loaded replica diverged from the in-memory posterior"
    );

    let swaps = [VersionSwap { at_tick: STORE_SWAP_TICK, source: v2_source.clone() }];
    let swapped: ServeRunReport =
        InferenceEngine::from_source(v1_source.clone(), policy, 2).run_with_swaps(&trace, &swaps);
    let boundary = swapped
        .batches
        .iter()
        .find(|b| b.version == 1)
        .expect("the swap must land within the store trace");
    let v1_run = InferenceEngine::from_source(v1_source, policy, 2).run(&trace);
    let v2_run = InferenceEngine::from_source(v2_source, policy, 2).run(&trace);

    StoreBenchResult {
        name,
        family: kind.paper_name(),
        v1_bytes: v1_encoded.len(),
        v1_digest: v1.digest(),
        v2_bytes: v2_encoded.len(),
        v2_digest: v2.digest(),
        versions: (version_1, version_2),
        swap_requested_tick: STORE_SWAP_TICK,
        swap_boundary_tick: boundary.start_tick,
        swapped_responses_digest: swapped.responses_digest(),
        v1_responses_digest: v1_run.responses_digest(),
        v2_responses_digest: v2_run.responses_digest(),
        encode_ns,
        decode_ns,
        publish_ns,
        load_ns,
    }
}

/// Builds the **deterministic** summary document committed as `BENCH_store_summary.json` and
/// gated by `bench_regression`: checkpoint sizes and digests, registry versions, hot-swap
/// tick boundaries and response digests — no wall-clock values.
pub fn summary_json(results: &[StoreBenchResult]) -> Json {
    let records: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::Str(r.name.clone())),
                ("family", Json::Str(r.family.to_string())),
                ("train_steps_per_version", Json::UInt(STORE_TRAIN_STEPS as u64)),
                ("v1_bytes", Json::UInt(r.v1_bytes as u64)),
                ("v1_digest", Json::Str(r.v1_digest.clone())),
                ("v2_bytes", Json::UInt(r.v2_bytes as u64)),
                ("v2_digest", Json::Str(r.v2_digest.clone())),
                (
                    "versions",
                    Json::Array(vec![
                        Json::UInt(u64::from(r.versions.0)),
                        Json::UInt(u64::from(r.versions.1)),
                    ]),
                ),
                ("swap_requested_tick", Json::UInt(r.swap_requested_tick)),
                ("swap_boundary_tick", Json::UInt(r.swap_boundary_tick)),
                ("swap_latency_ticks", Json::UInt(r.swap_latency_ticks())),
                ("swapped_responses_digest", Json::Str(r.swapped_responses_digest.clone())),
                ("v1_responses_digest", Json::Str(r.v1_responses_digest.clone())),
                ("v2_responses_digest", Json::Str(r.v2_responses_digest.clone())),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("shift-bnn-store-summary/v1".into())),
        (
            "workload",
            Json::obj([
                ("seed", Json::UInt(STORE_SEED)),
                ("requests", Json::UInt(STORE_REQUESTS as u64)),
            ]),
        ),
        ("records", Json::Array(records)),
    ])
}

/// Builds the full (machine-dependent) report written to `BENCH_store.json` — persistence
/// timings and throughputs alongside everything in the summary.
pub fn full_json(results: &[StoreBenchResult]) -> Json {
    let records: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::Str(r.name.clone())),
                ("family", Json::Str(r.family.to_string())),
                ("v1_bytes", Json::UInt(r.v1_bytes as u64)),
                ("v1_digest", Json::Str(r.v1_digest.clone())),
                ("encode_ns", Json::Float(r.encode_ns)),
                ("decode_ns", Json::Float(r.decode_ns)),
                ("publish_ns", Json::Float(r.publish_ns)),
                ("load_ns", Json::Float(r.load_ns)),
                ("encode_mb_per_s", Json::Float(r.encode_mb_per_s())),
                ("decode_mb_per_s", Json::Float(r.decode_mb_per_s())),
                ("swap_latency_ticks", Json::UInt(r.swap_latency_ticks())),
            ])
        })
        .collect();
    Json::obj([("records", Json::Array(records)), ("summary", summary_json(results))])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(label: &str) -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("store-views-{label}"))
    }

    #[test]
    fn store_bench_is_deterministic_and_timing_free_in_summary() {
        let a = run_store_bench(&tmp_root("det-a"), 1);
        let b = run_store_bench(&tmp_root("det-b"), 2);
        let sa = summary_json(&a).to_pretty();
        let sb = summary_json(&b).to_pretty();
        assert_eq!(sa, sb, "summary must not depend on the registry path or rep count");
        assert!(!sa.contains("_ns"), "summary must not embed wall-clock fields");
        std::fs::remove_dir_all(tmp_root("det-a")).ok();
        std::fs::remove_dir_all(tmp_root("det-b")).ok();
    }

    #[test]
    fn v2_continues_v1_rather_than_restarting() {
        let v1 = train_v1(ModelKind::Mlp);
        let v2 = train_v2(ModelKind::Mlp, &v1);
        assert_ne!(v1.digest(), v2.digest(), "further training must change the posterior");
        let t1 = v1.trainer.as_ref().unwrap();
        let t2 = v2.trainer.as_ref().unwrap();
        assert_eq!(t1.steps, STORE_TRAIN_STEPS as u64);
        assert_eq!(t2.steps, 2 * STORE_TRAIN_STEPS as u64);
    }
}
