//! Shared helpers for the figure/table binaries of the Shift-BNN benchmark harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's evaluation section
//! and prints it as an aligned text table; `EXPERIMENTS.md` records the paper-reported values
//! next to the values these binaries produce.
//!
//! The figure *computations* live in [`views`] as pure functions over one shared design-space
//! sweep ([`shift_bnn::sweep`]); the binaries render those views, and `tests/golden_figures.rs`
//! pins their key scalars against checked-in golden values. The serving benchmark's grid and
//! deterministic summary live in [`serve_views`], the cluster-serving benchmark (routing ×
//! arrival grid plus the plan-only stress arm) in [`cluster_views`], the fault-injection
//! chaos benchmark (fault scenarios × arrivals with failover and the degradation ladder)
//! in [`chaos_views`], the traced-replay observability benchmark (span
//! assembly, stage attribution, metrics digests) in [`obs_views`], the checkpoint-store
//! benchmark (train → publish → serve → hot-swap) in [`store_views`], and the numeric-tree
//! comparison behind the CI bench-regression gate in [`regression`].

//! The hot-path kernel microbenchmarks (`hot_bench`) live in [`hot`], and the allocation
//! counter enforcing the zero-allocation steady state in [`alloc`].

pub mod alloc;
pub mod chaos_views;
pub mod cluster_views;
pub mod hot;
pub mod moment_views;
pub mod obs_views;
pub mod regression;
pub mod serve_views;
pub mod store_views;
pub mod views;

/// Prints an aligned text table with a title, a header row and data rows.
///
/// # Examples
///
/// ```
/// shift_bnn_bench::print_table(
///     "Demo",
///     &["model", "value"],
///     &[vec!["B-LeNet".to_string(), "1.00".to_string()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a ratio with two decimal places and a trailing `x`.
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a fraction as a percentage with one decimal place.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats a float with the given number of decimals.
pub fn num(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.5), "1.50x");
        assert_eq!(percent(0.756), "75.6%");
        assert_eq!(num(1.23456, 3), "1.235");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into()], vec!["1".into(), "2".into(), "3".into()]],
        );
    }
}
