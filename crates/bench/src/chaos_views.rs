//! The `chaos_bench` fault grid and its deterministic summary.
//!
//! Same division of labor as [`crate::cluster_views`]: the binary drives the grid and
//! measures wall clocks; this module owns what the grid *is* and which scalars are
//! deterministic enough to commit (`BENCH_chaos_summary.json`) and regression-check.
//! Every recorded number is tick-domain — availability, retry counts, degradation-mode
//! occupancy, p50–p999 tails, response/event/fault digests — so the committed summary
//! reproduces bit-for-bit on any machine at any worker count.
//!
//! The grid crosses five **fault scenarios** with the four arrival processes on a 4-shard
//! Monte-Carlo cluster serving S = 16 samples per request:
//!
//! * `baseline` — the degradation ladder armed but no faults: the control every other
//!   scenario is read against;
//! * `single_crash` — shard 0 down from 1/8 into the trace until 7/8 through it, ladder
//!   armed: the headline scenario for the availability gate (the three survivors absorb
//!   the load by stepping down the ladder);
//! * `single_crash_no_ladder` — identical crash window, ladder disarmed: quantifies what
//!   graceful degradation buys (the acceptance gate demands ≥ 99% availability with the
//!   ladder vs < 95% without, under uniform arrivals);
//! * `slow_shard` — shard 1 runs 4× slow across the middle half of the trace: failover
//!   never fires, but least-loaded routing and the ladder must still hold the tail;
//! * `crash_storm` — staggered crashes on two shards, a slow window on a third, a
//!   hot-swap on shard 2 cancelled by checkpoint corruption, and a surviving hot-swap on
//!   shard 3 — the everything-at-once arm pinned tick-for-tick by the chaos golden test.

use bnn_serve::{
    ArrivalProcess, BatchPolicy, Cluster, ClusterConfig, ClusterRunReport, DegradeLadder,
    FaultEvent, FaultPlan, InferRequest, ModelSource, ModelSpec, RetryPolicy, RoutingPolicy,
    ServeMode, ShardSwap, VersionSwap, WorkloadSpec,
};
use shift_bnn::sweep::json::Json;

/// Weight seed of the frozen posterior every chaos benchmark replicates.
pub const CHAOS_WEIGHT_SEED: u64 = 2021;

/// Weight seed of the hot-swap target posterior in the `crash_storm` scenario.
pub const CHAOS_SWAP_SEED: u64 = 4042;

/// Workload seed of the synthetic chaos traces.
pub const CHAOS_WORKLOAD_SEED: u64 = 13;

/// Ticks between arrivals before the arrival process shapes them. Chosen so the healthy
/// 4-shard cluster absorbs uniform traffic at full S = 16 quality with backlog to spare,
/// while a crashed shard pushes the survivors' backlog through the ladder watermarks.
pub const CHAOS_INTERARRIVAL_TICKS: u64 = 26;

/// Monte-Carlo samples each request asks for at full quality.
pub const CHAOS_SAMPLES: usize = 16;

/// Shards of every chaos cluster.
pub const CHAOS_SHARDS: usize = 4;

/// Per-shard backlog bound.
pub const CHAOS_QUEUE_CAP: usize = 12;

/// The degradation ladder armed in every scenario except `single_crash_no_ladder`:
/// backlog ≥ 2 per live shard steps S = 16 → 4, ≥ 7 steps to the single-pass moment
/// backend, ≥ 10 (just under the cap of 12) sheds outright.
pub fn chaos_ladder() -> DegradeLadder {
    DegradeLadder {
        reduced_samples: 4,
        reduce_watermark: 2,
        moment_watermark: 7,
        shed_watermark: 10,
    }
}

/// The failover retry policy of every scenario: first retry 64 ticks after a crash
/// evicts a request, doubling to a 512-tick cap, at most 3 attempts per request.
pub fn chaos_retry() -> RetryPolicy {
    RetryPolicy { base_backoff_ticks: 64, max_backoff_ticks: 512, max_retries: 3 }
}

/// One fault scenario: a named `FaultPlan` plus any hot-swap schedule it interacts with.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Stable scenario name (a summary-record key).
    pub name: &'static str,
    /// The fault schedule.
    pub faults: FaultPlan,
    /// Hot swaps the scenario schedules (only `crash_storm` uses this).
    pub swaps: Vec<ShardSwap>,
}

/// Requests per grid config: the full trace length, or the CI-reduced one.
pub fn chaos_request_count(reduced: bool) -> usize {
    if reduced {
        250
    } else {
        1000
    }
}

/// The nominal trace span in ticks (last uniform arrival), from which every scenario's
/// event ticks are derived so the fault windows cover the same trace *fractions* in full
/// and reduced runs.
pub fn chaos_span_ticks(reduced: bool) -> u64 {
    chaos_request_count(reduced) as u64 * CHAOS_INTERARRIVAL_TICKS
}

/// Enumerates the five scenarios, in committed order.
pub fn chaos_scenarios(reduced: bool) -> Vec<ChaosScenario> {
    let span = chaos_span_ticks(reduced);
    let crash_window = vec![
        FaultEvent::ShardDown { tick: span / 8, shard: 0 },
        FaultEvent::ShardUp { tick: span * 7 / 8, shard: 0 },
    ];
    let storm_swap = |shard: usize, seed: u64| ShardSwap {
        shard,
        swap: VersionSwap { at_tick: span / 2, source: ModelSource::Spec(ModelSpec::mlp(seed)) },
    };
    vec![
        ChaosScenario {
            name: "baseline",
            faults: FaultPlan::none().with_ladder(chaos_ladder()).with_retry(chaos_retry()),
            swaps: Vec::new(),
        },
        ChaosScenario {
            name: "single_crash",
            faults: FaultPlan::new(crash_window.clone())
                .with_ladder(chaos_ladder())
                .with_retry(chaos_retry()),
            swaps: Vec::new(),
        },
        ChaosScenario {
            name: "single_crash_no_ladder",
            faults: FaultPlan::new(crash_window).with_retry(chaos_retry()),
            swaps: Vec::new(),
        },
        ChaosScenario {
            name: "slow_shard",
            faults: FaultPlan::new(vec![FaultEvent::SlowShard {
                shard: 1,
                from_tick: span / 4,
                until_tick: span * 3 / 4,
                multiplier: 4,
            }])
            .with_ladder(chaos_ladder())
            .with_retry(chaos_retry()),
            swaps: Vec::new(),
        },
        ChaosScenario {
            name: "crash_storm",
            faults: FaultPlan::new(vec![
                FaultEvent::ShardDown { tick: span / 8, shard: 0 },
                FaultEvent::SlowShard {
                    shard: 1,
                    from_tick: span / 4,
                    until_tick: span * 3 / 4,
                    multiplier: 3,
                },
                FaultEvent::ShardDown { tick: span * 3 / 8, shard: 2 },
                FaultEvent::CorruptCheckpoint { tick: span / 2, shard: 2 },
                FaultEvent::ShardUp { tick: span * 5 / 8, shard: 0 },
                FaultEvent::ShardUp { tick: span * 6 / 8, shard: 2 },
            ])
            .with_ladder(chaos_ladder())
            .with_retry(chaos_retry()),
            // Shard 2's swap is cancelled by the corruption event above; shard 3's lands.
            swaps: vec![storm_swap(2, CHAOS_SWAP_SEED), storm_swap(3, CHAOS_SWAP_SEED)],
        },
    ]
}

/// The arrival processes the grid sweeps (same shapes as the cluster benchmark).
pub fn chaos_arrivals() -> [ArrivalProcess; 4] {
    [
        ArrivalProcess::Uniform,
        ArrivalProcess::Bursty { mean_burst: 6 },
        ArrivalProcess::Diurnal { cycle: 512 },
        ArrivalProcess::Adversarial { spike: 150 },
    ]
}

/// One point of the chaos grid: (scenario × arrival process).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The fault scenario.
    pub scenario: ChaosScenario,
    /// The arrival shape of the trace.
    pub arrival: ArrivalProcess,
}

/// Enumerates the grid, scenario-major — the order the summary's records are committed in.
pub fn chaos_configs(reduced: bool) -> Vec<ChaosConfig> {
    let mut configs = Vec::new();
    for scenario in chaos_scenarios(reduced) {
        for arrival in chaos_arrivals() {
            configs.push(ChaosConfig { scenario: scenario.clone(), arrival });
        }
    }
    configs
}

/// The shared cluster shape of every chaos run.
pub fn chaos_cluster_config(workers: usize) -> ClusterConfig {
    ClusterConfig {
        source: ModelSource::Spec(ModelSpec::mlp(CHAOS_WEIGHT_SEED)),
        mode: ServeMode::MonteCarlo,
        shards: CHAOS_SHARDS,
        workers_per_shard: workers,
        batch: BatchPolicy { max_batch: 8, max_wait_ticks: 16 },
        queue_cap: CHAOS_QUEUE_CAP,
        deadline_ticks: None,
        routing: RoutingPolicy::LeastLoaded,
        autoscale: None,
    }
}

fn chaos_trace(arrival: ArrivalProcess, requests: usize) -> Vec<InferRequest> {
    let spec = ModelSpec::mlp(CHAOS_WEIGHT_SEED);
    WorkloadSpec::uniform(requests, CHAOS_INTERARRIVAL_TICKS, CHAOS_SAMPLES, CHAOS_WORKLOAD_SEED)
        .with_arrival(arrival)
        .generate(&spec)
}

/// Runs every grid config with `workers` pool threads per shard and returns
/// `(config, report)` pairs in grid order. Every value a report serializes is
/// worker-invariant, so any `workers` reproduces the committed summary.
pub fn run_chaos_grid(reduced: bool, workers: usize) -> Vec<(ChaosConfig, ClusterRunReport)> {
    let requests = chaos_request_count(reduced);
    chaos_configs(reduced)
        .into_iter()
        .map(|config| {
            let trace = chaos_trace(config.arrival, requests);
            let cluster = Cluster::new(chaos_cluster_config(workers));
            let report =
                cluster.run_with_faults(&trace, &config.scenario.swaps, &config.scenario.faults);
            (config, report)
        })
        .collect()
}

/// The measured availability of one `(scenario, arrival)` grid point, for the gates.
pub fn grid_availability(
    grid: &[(ChaosConfig, ClusterRunReport)],
    scenario: &str,
    arrival: &str,
) -> f64 {
    grid.iter()
        .find(|(config, _)| config.scenario.name == scenario && config.arrival.label() == arrival)
        .map(|(_, report)| report.availability())
        .unwrap_or_else(|| panic!("no grid point {scenario} x {arrival}"))
}

fn percentile_fields(report: &ClusterRunReport) -> Json {
    let field = |q| {
        if report.latencies.is_empty() {
            Json::Null
        } else {
            Json::UInt(report.latency_percentile(q))
        }
    };
    Json::obj([
        ("p50", field(0.50)),
        ("p95", field(0.95)),
        ("p99", field(0.99)),
        ("p999", field(0.999)),
    ])
}

/// Builds the deterministic summary document from a grid run — the committed
/// `BENCH_chaos_summary.json` regression baseline.
pub fn chaos_summary_json(grid: &[(ChaosConfig, ClusterRunReport)], reduced: bool) -> Json {
    let records: Vec<Json> = grid
        .iter()
        .map(|(config, report)| {
            let (normal, reduced_s, moment) = report.degrade_occupancy();
            Json::obj([
                ("scenario", Json::Str(config.scenario.name.into())),
                ("arrival", Json::Str(config.arrival.label())),
                ("submitted", Json::UInt(report.submitted() as u64)),
                ("answered", Json::UInt(report.answered() as u64)),
                ("shed", Json::UInt(report.sheds.len() as u64)),
                ("availability", Json::Float(report.availability())),
                ("retries", Json::UInt(report.faults.retries.len() as u64)),
                ("degrade_transitions", Json::UInt(report.faults.degrades.len() as u64)),
                (
                    "degrade_occupancy",
                    Json::obj([
                        ("normal", Json::UInt(normal as u64)),
                        ("reduced_samples", Json::UInt(reduced_s as u64)),
                        ("moment", Json::UInt(moment as u64)),
                    ]),
                ),
                ("checkpoint_faults", Json::UInt(report.faults.checkpoint_faults.len() as u64)),
                ("makespan_ticks", Json::UInt(report.makespan_ticks)),
                ("latency_ticks", percentile_fields(report)),
                ("responses_digest", Json::Str(report.responses_digest())),
                ("events_digest", Json::Str(report.events_digest())),
                ("fault_events_digest", Json::Str(report.fault_events_digest())),
            ])
        })
        .collect();
    let ladder = chaos_ladder();
    let retry = chaos_retry();
    Json::obj([
        ("schema", Json::Str("shift-bnn-chaos-summary/v1".into())),
        ("reduced", Json::Bool(reduced)),
        (
            "cluster",
            Json::obj([
                ("shards", Json::UInt(CHAOS_SHARDS as u64)),
                ("queue_cap", Json::UInt(CHAOS_QUEUE_CAP as u64)),
                ("max_batch", Json::UInt(8)),
                ("max_wait_ticks", Json::UInt(16)),
                ("weight_seed", Json::UInt(CHAOS_WEIGHT_SEED)),
            ]),
        ),
        (
            "workload",
            Json::obj([
                ("requests", Json::UInt(chaos_request_count(reduced) as u64)),
                ("interarrival_ticks", Json::UInt(CHAOS_INTERARRIVAL_TICKS)),
                ("samples", Json::UInt(CHAOS_SAMPLES as u64)),
                ("seed", Json::UInt(CHAOS_WORKLOAD_SEED)),
            ]),
        ),
        (
            "ladder",
            Json::obj([
                ("reduced_samples", Json::UInt(ladder.reduced_samples as u64)),
                ("reduce_watermark", Json::UInt(ladder.reduce_watermark as u64)),
                ("moment_watermark", Json::UInt(ladder.moment_watermark as u64)),
                ("shed_watermark", Json::UInt(ladder.shed_watermark as u64)),
            ]),
        ),
        (
            "retry",
            Json::obj([
                ("base_backoff_ticks", Json::UInt(retry.base_backoff_ticks)),
                ("max_backoff_ticks", Json::UInt(retry.max_backoff_ticks)),
                ("max_retries", Json::UInt(retry.max_retries as u64)),
            ]),
        ),
        ("records", Json::Array(records)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_scenario_major() {
        let configs = chaos_configs(true);
        assert_eq!(configs.len(), 5 * 4);
        assert_eq!(configs[0].scenario.name, "baseline");
        assert_eq!(configs[4].scenario.name, "single_crash");
        assert_eq!(configs[8].scenario.name, "single_crash_no_ladder");
        assert_eq!(configs[12].scenario.name, "slow_shard");
        assert_eq!(configs[16].scenario.name, "crash_storm");
        assert_eq!(configs[0].arrival.label(), "uniform");
    }

    #[test]
    fn every_scenario_validates_and_conserves_requests() {
        for (config, report) in run_chaos_grid(true, 1) {
            assert_eq!(
                report.answered() + report.sheds.len(),
                report.submitted(),
                "{} x {}: conservation",
                config.scenario.name,
                config.arrival.label()
            );
        }
    }

    #[test]
    fn reduced_grid_summary_is_worker_invariant() {
        let a = chaos_summary_json(&run_chaos_grid(true, 1), true);
        let b = chaos_summary_json(&run_chaos_grid(true, 3), true);
        assert_eq!(a.to_pretty(), b.to_pretty());
    }

    #[test]
    fn the_ladder_buys_availability_under_a_crash() {
        let grid = run_chaos_grid(true, 2);
        let with = grid_availability(&grid, "single_crash", "uniform");
        let without = grid_availability(&grid, "single_crash_no_ladder", "uniform");
        assert!(with >= 0.99, "ladder availability {with} under the single crash");
        assert!(without < 0.95, "no-ladder availability {without} under the single crash");
    }

    #[test]
    fn the_storm_cancels_exactly_one_swap() {
        let grid = run_chaos_grid(true, 1);
        let (_, report) = grid
            .iter()
            .find(|(c, _)| c.scenario.name == "crash_storm" && c.arrival.label() == "uniform")
            .unwrap();
        assert_eq!(report.faults.checkpoint_faults.len(), 1);
        assert_eq!(report.faults.checkpoint_faults[0].cancelled_swaps, 1);
        assert_eq!(report.faults.checkpoint_faults[0].shard, 2);
        // Shard 2 never leaves version 0; shard 3's swap lands.
        assert!(report.shard_reports[2].batches.iter().all(|b| b.version == 0));
        assert!(report.shard_reports[3].batches.iter().any(|b| b.version == 1));
    }
}
