//! Numeric-tree comparison behind the CI bench-regression gate.
//!
//! The committed baselines (`BENCH_sweep_summary.json`, `BENCH_serve_summary.json`) hold only
//! deterministic headline scalars, so a fresh run should reproduce them *exactly*; the
//! tolerance knob exists to keep the checker honest about what drifted and by how much rather
//! than failing on the first ULP if a future change legitimately perturbs float ordering.
//! Structure (keys, array lengths, strings, bools) always compares exactly.

use shift_bnn::sweep::json::Json;

/// One divergence between a baseline document and a fresh one.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// `/`-separated path from the document root to the diverging node.
    pub path: String,
    /// What differs.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", if self.path.is_empty() { "<root>" } else { &self.path }, self.detail)
    }
}

/// Compares two parsed JSON documents; numeric leaves may differ by a relative tolerance
/// (`|a − b| ≤ tolerance × max(1, |a|, |b|)`), everything else must match exactly. Returns
/// every mismatch found (empty = documents agree).
pub fn compare(baseline: &Json, fresh: &Json, tolerance: f64) -> Vec<Mismatch> {
    let mut mismatches = Vec::new();
    compare_at(baseline, fresh, tolerance, String::new(), &mut mismatches);
    mismatches
}

fn numeric(value: &Json) -> Option<f64> {
    value.as_f64()
}

fn kind(value: &Json) -> &'static str {
    match value {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::UInt(_) | Json::Int(_) | Json::Float(_) => "number",
        Json::Str(_) => "string",
        Json::Array(_) => "array",
        Json::Object(_) => "object",
    }
}

fn join(path: &str, segment: &str) -> String {
    if path.is_empty() {
        segment.to_string()
    } else {
        format!("{path}/{segment}")
    }
}

fn compare_at(
    baseline: &Json,
    fresh: &Json,
    tolerance: f64,
    path: String,
    out: &mut Vec<Mismatch>,
) {
    // Numbers compare numerically whatever their integer/float classification.
    if let (Some(a), Some(b)) = (numeric(baseline), numeric(fresh)) {
        let scale = a.abs().max(b.abs()).max(1.0);
        if (a - b).abs() > tolerance * scale {
            out.push(Mismatch {
                path,
                detail: format!(
                    "baseline {a} vs fresh {b} (rel diff {:.3e})",
                    (a - b).abs() / scale
                ),
            });
        }
        return;
    }
    match (baseline, fresh) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(a), Json::Bool(b)) => {
            if a != b {
                out.push(Mismatch { path, detail: format!("baseline {a} vs fresh {b}") });
            }
        }
        (Json::Str(a), Json::Str(b)) => {
            if a != b {
                out.push(Mismatch { path, detail: format!("baseline {a:?} vs fresh {b:?}") });
            }
        }
        (Json::Array(a), Json::Array(b)) => {
            if a.len() != b.len() {
                out.push(Mismatch {
                    path: path.clone(),
                    detail: format!("array length {} vs {}", a.len(), b.len()),
                });
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                compare_at(x, y, tolerance, join(&path, &i.to_string()), out);
            }
        }
        (Json::Object(a), Json::Object(b)) => {
            for (key, x) in a {
                match fresh.get(key) {
                    Some(y) => compare_at(x, y, tolerance, join(&path, key), out),
                    None => out.push(Mismatch {
                        path: join(&path, key),
                        detail: "missing from fresh document".into(),
                    }),
                }
            }
            for (key, _) in b {
                if baseline.get(key).is_none() {
                    out.push(Mismatch {
                        path: join(&path, key),
                        detail: "not present in baseline".into(),
                    });
                }
            }
        }
        _ => out.push(Mismatch {
            path,
            detail: format!("type mismatch: baseline {} vs fresh {}", kind(baseline), kind(fresh)),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn identical_documents_have_no_mismatches() {
        let doc = parse(r#"{"a":1,"b":[1.5,"x",true],"c":{"d":null}}"#);
        assert!(compare(&doc, &doc, 0.0).is_empty());
    }

    #[test]
    fn numeric_drift_within_tolerance_passes_and_beyond_fails() {
        let a = parse(r#"{"v":100.0}"#);
        let b = parse(r#"{"v":100.0001}"#);
        assert!(compare(&a, &b, 1e-5).is_empty());
        let found = compare(&a, &b, 1e-9);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].path, "v");
    }

    #[test]
    fn integer_and_float_representations_compare_numerically() {
        assert!(compare(&parse("360"), &parse("360.0"), 0.0).is_empty());
        assert!(!compare(&parse("360"), &parse("361"), 1e-9).is_empty());
    }

    #[test]
    fn structural_divergence_is_reported_with_paths() {
        let a = parse(r#"{"records":[{"m":"B-MLP","v":1},{"m":"B-LeNet","v":2}],"extra":1}"#);
        let b = parse(r#"{"records":[{"m":"B-MLP","v":1},{"m":"B-VGG","v":2}],"added":true}"#);
        let found = compare(&a, &b, 0.0);
        let paths: Vec<&str> = found.iter().map(|m| m.path.as_str()).collect();
        assert!(paths.contains(&"records/1/m"));
        assert!(paths.contains(&"extra"));
        assert!(paths.contains(&"added"));
    }

    #[test]
    fn type_mismatches_and_length_mismatches_are_caught() {
        let found = compare(&parse(r#"{"a":[1,2]}"#), &parse(r#"{"a":[1]}"#), 0.0);
        assert!(found.iter().any(|m| m.detail.contains("array length")));
        let found = compare(&parse(r#"{"a":"x"}"#), &parse(r#"{"a":1}"#), 0.0);
        assert!(found.iter().any(|m| m.detail.contains("type mismatch")));
    }

    #[test]
    fn bool_value_differences_report_values_not_types() {
        let found = compare(&parse(r#"{"reduced":true}"#), &parse(r#"{"reduced":false}"#), 0.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].detail, "baseline true vs fresh false");
    }
}
