//! The numeric hot-path microbenchmark suite behind the `hot_bench` binary.
//!
//! Three families of measurements, all pure functions of their seeds:
//!
//! * **conv kernels** — the packed im2col+GEMM drivers of [`bnn_tensor::kernels`] against the
//!   retained reference loop nests of [`bnn_tensor::conv::reference`], per geometry and per
//!   direction (forward / grad-input / grad-weights). Each comparison also *checks* the two
//!   paths produce bit-identical outputs and records an FNV-1a digest of the result bits —
//!   the digests (not the timings) go into the committed `BENCH_hot_summary.json`;
//! * **ε generation** — word-parallel [`Grng::fill_epsilon`](bnn_lfsr::Grng::fill_epsilon)
//!   against the bit-serial `next_epsilon` loop, plus a stream digest;
//! * **steady-state probes** — a full training iteration ([`TrainingProbe`]) and a served
//!   request ([`ServeProbe`]), used by the allocation-counting test and by `hot_bench` to
//!   assert the zero-allocation steady state at the allocator.
//!
//! Wall-clock numbers are machine-dependent and therefore live only in the full
//! `BENCH_hot.json` artifact and the printed table, never in the committed summary.

use bnn_lfsr::{Grng, GrngMode};
use bnn_obs::{Event, Recorder, TraceRecorder};
use bnn_serve::{
    BatchPolicy, EngineSpec, InferRequest, InferResponse, InferenceEngine, ModelSpec, ServeReplica,
    WorkloadSpec,
};
use bnn_tensor::conv::{reference, ConvGeometry};
use bnn_tensor::kernels::{
    conv2d_backward_input_into, conv2d_backward_weights_into, conv2d_forward_into,
    gemm_accumulate_tiered,
};
use bnn_tensor::{KernelConfig, KernelTier, Scratch, Tensor};
use bnn_train::trainer::{Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use bnn_train::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn::sweep::json::Json;
use std::time::Instant;

/// FNV-1a digest of a float slice's bit patterns, as 16 hex characters (the workspace-shared
/// [`fnv1a_hex`](shift_bnn::sweep::json::fnv1a_hex) over the little-endian bit stream).
pub fn digest_f32(values: &[f32]) -> String {
    shift_bnn::sweep::json::fnv1a_hex(values.iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

/// Deterministic pseudo-random tensor fill in roughly [−1, 1] (the shared splitmix64 fixture
/// generator from `bnn_tensor::init` — the committed digests depend on this exact stream).
pub fn fill_tensor(seed: u64, shape: &[usize]) -> Tensor {
    bnn_tensor::init::splitmix_tensor(seed, shape)
}

/// One benchmarked convolution geometry (name, layer geometry, input spatial size).
#[derive(Debug, Clone)]
pub struct HotGeometry {
    /// Short stable identifier used in reports and the committed summary.
    pub name: &'static str,
    /// The convolution parameters.
    pub geom: ConvGeometry,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
}

/// The benchmarked geometry grid: the two trainable-proxy convolution layers that every
/// training golden exercises, plus two serving-scale layers where the cache-blocked GEMM's
/// arithmetic intensity actually shows.
pub fn hot_geometries() -> Vec<HotGeometry> {
    let c = |ic, oc, k, s, p| ConvGeometry {
        in_channels: ic,
        out_channels: oc,
        kernel: k,
        stride: s,
        padding: p,
    };
    vec![
        HotGeometry { name: "proxy_conv1_1x6_k3_8x8", geom: c(1, 6, 3, 1, 1), h: 8, w: 8 },
        HotGeometry { name: "proxy_conv2_6x16_k3_4x4", geom: c(6, 16, 3, 1, 1), h: 4, w: 4 },
        HotGeometry { name: "serve_conv_8x16_k3_16x16", geom: c(8, 16, 3, 1, 1), h: 16, w: 16 },
        HotGeometry { name: "serve_conv_16x32_k3_32x32", geom: c(16, 32, 3, 1, 1), h: 32, w: 32 },
        HotGeometry {
            name: "serve_conv_16x32_k5_s2_16x16",
            geom: c(16, 32, 5, 2, 2),
            h: 16,
            w: 16,
        },
    ]
}

/// Timing + bit-exactness result of one (geometry, direction) comparison.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Geometry identifier.
    pub name: &'static str,
    /// `"forward"`, `"grad_input"` or `"grad_weights"`.
    pub op: &'static str,
    /// Best-of-reps time of the retained reference loops, in nanoseconds per call.
    pub reference_ns: f64,
    /// Best-of-reps time of the packed im2col+GEMM kernel, in nanoseconds per call.
    pub packed_ns: f64,
    /// FNV-1a digest of the (bit-identical) output of both paths.
    pub digest: String,
}

impl KernelBench {
    /// reference / packed wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.reference_ns / self.packed_ns
    }
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Runs the conv-kernel comparison over [`hot_geometries`].
///
/// # Panics
///
/// Panics if the packed and reference outputs are not bit-identical (the rewrite's core
/// contract; also pinned by proptests in `crates/tensor`).
pub fn run_kernel_benches(reps: usize) -> Vec<KernelBench> {
    let mut out = Vec::new();
    let mut scratch = Scratch::new();
    for hg in hot_geometries() {
        let g = &hg.geom;
        let (n, m, k) = (g.in_channels, g.out_channels, g.kernel);
        let (oh, ow) = g.output_size(hg.h, hg.w);
        let input = fill_tensor(0xA11CE ^ n as u64, &[n, hg.h, hg.w]);
        let weights = fill_tensor(0xB0B ^ m as u64, &[m, n, k, k]);
        let bias = fill_tensor(0xBEEF, &[m]);
        let grad_out = fill_tensor(0xD00D ^ m as u64, &[m, oh, ow]);

        // Forward.
        let want = reference::conv2d_forward(g, &input, &weights, &bias).unwrap();
        let mut got = scratch.take_tensor(&[m, oh, ow]);
        conv2d_forward_into(g, &input, &weights, &bias, &mut got, &mut scratch).unwrap();
        assert_bits(&got, &want, hg.name, "forward");
        let reference_ns =
            best_of(reps, || reference::conv2d_forward(g, &input, &weights, &bias).unwrap());
        let packed_ns = best_of(reps, || {
            conv2d_forward_into(g, &input, &weights, &bias, &mut got, &mut scratch).unwrap()
        });
        out.push(KernelBench {
            name: hg.name,
            op: "forward",
            reference_ns,
            packed_ns,
            digest: digest_f32(want.data()),
        });
        scratch.put_tensor(got);

        // Input gradient.
        let want = reference::conv2d_backward_input(g, &grad_out, &weights, hg.h, hg.w).unwrap();
        let mut got = scratch.take_tensor(&[n, hg.h, hg.w]);
        conv2d_backward_input_into(g, &grad_out, &weights, hg.h, hg.w, &mut got, &mut scratch)
            .unwrap();
        assert_bits(&got, &want, hg.name, "grad_input");
        let reference_ns = best_of(reps, || {
            reference::conv2d_backward_input(g, &grad_out, &weights, hg.h, hg.w).unwrap()
        });
        let packed_ns = best_of(reps, || {
            conv2d_backward_input_into(g, &grad_out, &weights, hg.h, hg.w, &mut got, &mut scratch)
                .unwrap()
        });
        out.push(KernelBench {
            name: hg.name,
            op: "grad_input",
            reference_ns,
            packed_ns,
            digest: digest_f32(want.data()),
        });
        scratch.put_tensor(got);

        // Weight gradient.
        let (want_gw, want_gb) = reference::conv2d_backward_weights(g, &input, &grad_out).unwrap();
        let mut gw = scratch.take_tensor(&[m, n, k, k]);
        let mut gb = scratch.take_tensor(&[m]);
        conv2d_backward_weights_into(g, &input, &grad_out, &mut gw, &mut gb, &mut scratch).unwrap();
        assert_bits(&gw, &want_gw, hg.name, "grad_weights");
        assert_bits(&gb, &want_gb, hg.name, "grad_bias");
        let reference_ns =
            best_of(reps, || reference::conv2d_backward_weights(g, &input, &grad_out).unwrap());
        let packed_ns = best_of(reps, || {
            conv2d_backward_weights_into(g, &input, &grad_out, &mut gw, &mut gb, &mut scratch)
                .unwrap()
        });
        out.push(KernelBench {
            name: hg.name,
            op: "grad_weights",
            reference_ns,
            packed_ns,
            digest: digest_f32(want_gw.data()),
        });
        scratch.put_tensor(gw);
        scratch.put_tensor(gb);
    }
    out
}

fn assert_bits(got: &Tensor, want: &Tensor, name: &str, op: &str) {
    assert_eq!(got.shape(), want.shape(), "{name}/{op} shape");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{name}/{op}[{i}]: {g} vs {w}");
    }
}

/// Per-[`KernelTier`] timing of one GEMM shape (PR 8's tier arms): every tier runs the same
/// `C += A·B`, the bit-exact tiers are asserted `to_bits()`-identical to the reference tier,
/// and `FastMath` — allowed to reassociate — records its own digest unasserted.
#[derive(Debug, Clone)]
pub struct TierBench {
    /// Shape identifier (`gemm_<m>x<k>x<n>`-style).
    pub name: &'static str,
    /// Rows of `A` / `C`.
    pub m: usize,
    /// The contraction depth.
    pub k: usize,
    /// Columns of `B` / `C`.
    pub n: usize,
    /// Best-of-reps nanoseconds per call, one entry per tier in [`KernelTier::ALL`] order.
    pub tier_ns: Vec<(KernelTier, f64)>,
    /// FNV-1a digest of the reference-tier result (shared by every bit-exact tier).
    pub digest: String,
}

impl TierBench {
    /// Best-of-reps time of one tier.
    ///
    /// # Panics
    ///
    /// Panics if `tier` was not benchmarked.
    pub fn ns(&self, tier: KernelTier) -> f64 {
        self.tier_ns.iter().find(|(t, _)| *t == tier).expect("tier was benchmarked").1
    }

    /// The headline PR 8 ratio: the previous default tier (`Blocked`) over the SIMD tier.
    pub fn simd_speedup(&self) -> f64 {
        self.ns(KernelTier::Blocked) / self.ns(KernelTier::Simd)
    }
}

/// The tier-arm GEMM shapes: the im2col products of the serving-scale conv geometries (the
/// shapes where tiers separate) plus one deeper-contraction panel.
fn tier_shapes() -> [(&'static str, usize, usize, usize); 3] {
    [
        ("gemm_16x72x256", 16, 72, 256),
        ("gemm_32x144x1024", 32, 144, 1024),
        ("gemm_64x288x1024", 64, 288, 1024),
    ]
}

/// Runs every [`KernelTier`] over the tier-arm GEMM shapes.
///
/// # Panics
///
/// Panics if any tier in [`KernelTier::BIT_EXACT`] — serial or M-split across 3 GEMM
/// workers — is not bit-identical to the reference tier.
pub fn run_tier_benches(reps: usize) -> Vec<TierBench> {
    tier_shapes()
        .into_iter()
        .map(|(name, m, k, n)| {
            let a = fill_tensor(0x7E12 ^ m as u64, &[m, k]);
            let b = fill_tensor(0x7E34 ^ n as u64, &[k, n]);
            let mut want = vec![0.0f32; m * n];
            gemm_accumulate_tiered(
                KernelConfig { tier: KernelTier::Reference, gemm_workers: 1 },
                &mut want,
                a.data(),
                b.data(),
                m,
                k,
                n,
            );
            let digest = digest_f32(&want);
            let mut c = vec![0.0f32; m * n];
            let mut tier_ns = Vec::new();
            for tier in KernelTier::ALL {
                for gemm_workers in [1usize, 3] {
                    let cfg = KernelConfig { tier, gemm_workers };
                    c.fill(0.0);
                    gemm_accumulate_tiered(cfg, &mut c, a.data(), b.data(), m, k, n);
                    if KernelTier::BIT_EXACT.contains(&tier) {
                        for (i, (g, w)) in c.iter().zip(&want).enumerate() {
                            assert_eq!(
                                g.to_bits(),
                                w.to_bits(),
                                "{name}: tier {} × {gemm_workers} workers diverged at [{i}]",
                                tier.label()
                            );
                        }
                    }
                }
                let cfg = KernelConfig { tier, gemm_workers: 1 };
                let ns = best_of(reps, || {
                    c.fill(0.0);
                    gemm_accumulate_tiered(cfg, &mut c, a.data(), b.data(), m, k, n);
                });
                tier_ns.push((tier, ns));
            }
            TierBench { name, m, k, n, tier_ns, digest }
        })
        .collect()
}

/// Timing of fused-sampling serving against the per-sample path (PR 8's fused arm): one
/// frozen B-LeNet replica answering `S = 16` Monte-Carlo requests both ways, asserted
/// byte-identical before either is timed.
#[derive(Debug, Clone)]
pub struct FusedServeBench {
    /// Monte-Carlo samples per request.
    pub samples: usize,
    /// Per-sample (`S` separate forward passes) nanoseconds per request.
    pub per_sample_ns: f64,
    /// Fused (one stacked walk) nanoseconds per request.
    pub fused_ns: f64,
    /// FNV-1a digest of the (identical) response mean ∥ variance bits.
    pub digest: String,
}

impl FusedServeBench {
    /// per-sample / fused wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.per_sample_ns / self.fused_ns
    }
}

/// Benchmarks fused vs per-sample Monte-Carlo serving at `samples` draws per request.
///
/// # Panics
///
/// Panics if the two paths' responses are not byte-identical.
pub fn run_fused_serve_bench(reps: usize, samples: usize) -> FusedServeBench {
    let spec = ModelSpec::lenet(7);
    let mut request = InferRequest {
        id: 0,
        arrival_tick: 0,
        input: fill_tensor(0xFEED, spec.input_shape()),
        samples,
        seed: 1,
    };
    let mut fused = ServeReplica::build(&EngineSpec::new(spec.clone()));
    let mut per_sample = ServeReplica::build(&EngineSpec::new(spec).fused_sampling(false));
    let mut response =
        InferResponse { id: 0, samples: 0, mean: Vec::new(), variance: Vec::new(), entropy: 0.0 };
    let mut check = response.clone();
    for seed in 1..=4u64 {
        request.seed = seed;
        fused.answer_into(&request, &mut response);
        per_sample.answer_into(&request, &mut check);
        assert_eq!(response, check, "fused serving diverged at seed {seed}");
    }
    let digest =
        digest_f32(&response.mean.iter().chain(&response.variance).copied().collect::<Vec<f32>>());
    let fused_ns = best_of(reps, || fused.answer_into(&request, &mut response));
    let per_sample_ns = best_of(reps, || per_sample.answer_into(&request, &mut check));
    FusedServeBench { samples, per_sample_ns, fused_ns, digest }
}

/// Timing result of the ε-generation comparison.
#[derive(Debug, Clone)]
pub struct EpsilonBench {
    /// ε values generated per call.
    pub count: usize,
    /// Bit-serial `next_epsilon` loop, nanoseconds per call.
    pub serial_ns: f64,
    /// Word-parallel `fill_epsilon`, nanoseconds per call.
    pub word_parallel_ns: f64,
    /// FNV-1a digest of the (identical) generated stream.
    pub digest: String,
}

impl EpsilonBench {
    /// serial / word-parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ns / self.word_parallel_ns
    }
}

/// Benchmarks word-parallel vs bit-serial generation of `count` ε values on the 256-bit
/// Shift-BNN GRNG (both paths produce — and the digest pins — the identical stream).
pub fn run_epsilon_bench(reps: usize, count: usize) -> EpsilonBench {
    let mut buf = vec![0.0f32; count];
    let mut word = Grng::shift_bnn_default(0x5EED).unwrap();
    word.fill_epsilon(&mut buf);
    let digest = digest_f32(&buf);
    let mut serial_check: Vec<f32> = Vec::with_capacity(count);
    let mut serial = Grng::shift_bnn_default(0x5EED).unwrap();
    for _ in 0..count {
        serial_check.push(serial.next_epsilon() as f32);
    }
    assert_eq!(digest, digest_f32(&serial_check), "ε streams diverged");

    let mut word = Grng::shift_bnn_default(0x5EED).unwrap();
    word.set_mode(GrngMode::Forward);
    let word_parallel_ns = best_of(reps, || word.fill_epsilon(&mut buf));
    let mut serial = Grng::shift_bnn_default(0x5EED).unwrap();
    let serial_ns = best_of(reps, || {
        for slot in buf.iter_mut() {
            *slot = serial.next_epsilon() as f32;
        }
    });
    EpsilonBench { count, serial_ns, word_parallel_ns, digest }
}

/// Geometric mean of a slice of ratios.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geometric_mean(ratios: &[f64]) -> f64 {
    assert!(!ratios.is_empty(), "geometric mean of nothing");
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// A steady-state training-iteration workload: one scaled-down Bayesian conv net, one
/// example, `S = 4` Monte-Carlo samples per iteration — the paper's Fig. 1(a) loop in
/// miniature, covering conv, pooling, flatten and linear layers.
pub struct TrainingProbe {
    trainer: Trainer,
    image: Tensor,
    label: usize,
}

impl TrainingProbe {
    /// Builds the probe (deterministic).
    pub fn new() -> TrainingProbe {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        let network = Network::bayes_lenet(&[1, 8, 8], 5, BayesConfig::default(), &mut rng);
        let trainer = Trainer::new(
            network,
            TrainerConfig { samples: 4, learning_rate: 0.02, ..TrainerConfig::default() },
        )
        .expect("default GRNG construction cannot fail");
        let image = fill_tensor(0xF00D, &[1, 8, 8]);
        TrainingProbe { trainer, image, label: 2 }
    }

    /// Runs `iters` full training iterations (forward, backward, ε retrieval, update).
    pub fn run(&mut self, iters: usize) {
        for _ in 0..iters {
            self.trainer
                .train_example(&self.image, self.label)
                .expect("probe shapes are consistent");
        }
    }
}

impl Default for TrainingProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// A steady-state serving workload: one frozen-posterior replica answering Monte-Carlo
/// uncertainty requests (`S = 8`) into a reusable response.
pub struct ServeProbe {
    replica: ServeReplica,
    request: InferRequest,
    response: InferResponse,
}

impl ServeProbe {
    /// Builds the probe over the B-LeNet serving proxy (deterministic).
    pub fn new() -> ServeProbe {
        let spec = ModelSpec::lenet(7);
        let replica = ServeReplica::new(&spec);
        let request = InferRequest {
            id: 0,
            arrival_tick: 0,
            input: fill_tensor(0xFEED, spec.input_shape()),
            samples: 8,
            seed: 1,
        };
        let response = InferResponse {
            id: 0,
            samples: 0,
            mean: Vec::new(),
            variance: Vec::new(),
            entropy: 0.0,
        };
        ServeProbe { replica, request, response }
    }

    /// Serves `n` requests (distinct seeds, reused buffers).
    pub fn run(&mut self, n: usize) {
        for i in 0..n {
            self.request.seed = 1 + i as u64;
            self.replica.answer_into(&self.request, &mut self.response);
        }
    }

    /// The last response's entropy (read back so the optimizer cannot elide the work).
    pub fn last_entropy(&self) -> f32 {
        self.response.entropy
    }
}

impl Default for ServeProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// A steady-state analytic-serving workload: one moment-backend replica answering requests
/// into a reusable response (single pass per request, no ε drawn).
pub struct MomentProbe {
    replica: ServeReplica,
    request: InferRequest,
    response: InferResponse,
}

impl MomentProbe {
    /// Builds the probe over the B-LeNet serving proxy (deterministic), moment backend.
    pub fn new() -> MomentProbe {
        let spec = ModelSpec::lenet(7);
        let request = InferRequest {
            id: 0,
            arrival_tick: 0,
            input: fill_tensor(0xFEED, spec.input_shape()),
            samples: 8, // ignored by the analytic backend — kept to mirror ServeProbe
            seed: 1,
        };
        let replica = ServeReplica::from_source_with_mode(
            &bnn_serve::ModelSource::Spec(spec),
            bnn_serve::ServeMode::Moment,
        );
        let response = InferResponse {
            id: 0,
            samples: 0,
            mean: Vec::new(),
            variance: Vec::new(),
            entropy: 0.0,
        };
        MomentProbe { replica, request, response }
    }

    /// Serves `n` analytic requests (reused buffers).
    pub fn run(&mut self, n: usize) {
        for i in 0..n {
            self.request.id = i as u64;
            self.replica.answer_into(&self.request, &mut self.response);
        }
    }

    /// The last response's entropy (read back so the optimizer cannot elide the work).
    pub fn last_entropy(&self) -> f32 {
        self.response.entropy
    }

    /// The last response's sample count — 0 marks it analytic.
    pub fn last_samples(&self) -> usize {
        self.response.samples
    }
}

impl Default for MomentProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// A steady-state *traced*-serving workload: the [`ServeProbe`] request loop with the
/// enabled recorder's per-request event sequence (admit → batch-close → dispatch →
/// compute-done → answer) recorded into a pre-sized [`TraceRecorder`]. Used by the
/// allocation-counting test to prove at the allocator that the recording path itself —
/// `record()` into warmed capacity — adds **zero** heap allocations to the steady state.
pub struct TracedServeProbe {
    replica: ServeReplica,
    request: InferRequest,
    response: InferResponse,
    recorder: TraceRecorder,
}

impl TracedServeProbe {
    /// Events recorded per served request (the full admit-to-answer stage sequence).
    pub const EVENTS_PER_REQUEST: usize = 5;

    /// Builds the probe over the B-LeNet serving proxy with a recorder pre-sized for any
    /// steady-state window the probe is asked to run (capacity is never grown afterwards).
    pub fn new() -> TracedServeProbe {
        let spec = ModelSpec::lenet(7);
        let replica = ServeReplica::new(&spec);
        let request = InferRequest {
            id: 0,
            arrival_tick: 0,
            input: fill_tensor(0xFEED, spec.input_shape()),
            samples: 8,
            seed: 1,
        };
        let response = InferResponse {
            id: 0,
            samples: 0,
            mean: Vec::new(),
            variance: Vec::new(),
            entropy: 0.0,
        };
        TracedServeProbe { replica, request, response, recorder: TraceRecorder::with_capacity(512) }
    }

    /// Serves `n` requests, recording the five-stage event sequence around each answer. The
    /// recorder is cleared first — `clear` keeps capacity, so a warmed probe records
    /// without touching the allocator (for windows up to `512 / EVENTS_PER_REQUEST`
    /// requests).
    pub fn run(&mut self, n: usize) {
        self.recorder.clear();
        for i in 0..n {
            let (id, tick) = (i as u64, i as u64 * 8);
            self.request.seed = 1 + i as u64;
            self.recorder.record(Event::Admit { request: id, tick, shard: 0, queue_depth: 1 });
            self.recorder.record(Event::BatchClose { request: id, shard: 0, tick: tick + 1 });
            self.recorder.record(Event::Dispatch { request: id, shard: 0, tick: tick + 2 });
            self.replica.answer_into(&self.request, &mut self.response);
            self.recorder.record(Event::ComputeDone { request: id, shard: 0, tick: tick + 5 });
            self.recorder.record(Event::Answer { request: id, tick: tick + 5 });
        }
    }

    /// Events recorded by the last [`run`](Self::run) window.
    pub fn events_recorded(&self) -> usize {
        self.recorder.len()
    }

    /// The last response's entropy (read back so the optimizer cannot elide the work).
    pub fn last_entropy(&self) -> f32 {
        self.response.entropy
    }
}

impl Default for TracedServeProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// Timing of a traced engine run against the identical untraced run (the observability
/// overhead arm): one single-worker B-LeNet engine over a uniform trace, responses asserted
/// byte-identical tracing-on vs tracing-off before either is timed.
#[derive(Debug, Clone)]
pub struct ObsOverheadBench {
    /// Requests per engine run.
    pub requests: usize,
    /// Events the traced run records.
    pub events: usize,
    /// Untraced `InferenceEngine::run`, nanoseconds per run.
    pub untraced_ns: f64,
    /// Traced `InferenceEngine::run_traced` into a warmed recorder, nanoseconds per run.
    pub traced_ns: f64,
    /// FNV-1a digest of the (identical) response document.
    pub digest: String,
}

impl ObsOverheadBench {
    /// untraced / traced wall-clock ratio — the `obs_overhead` gate: ≥ 0.95 means the
    /// enabled recorder costs at most ~5% of an engine run.
    pub fn overhead(&self) -> f64 {
        self.untraced_ns / self.traced_ns
    }
}

/// Benchmarks a traced engine run against the untraced run over `requests` B-LeNet
/// Monte-Carlo requests.
///
/// # Panics
///
/// Panics if the traced and untraced responses are not byte-identical.
pub fn run_obs_overhead_bench(reps: usize, requests: usize) -> ObsOverheadBench {
    let spec = ModelSpec::lenet(7);
    let trace = WorkloadSpec::uniform(requests, 8, 4, 13).generate(&spec);
    let engine = InferenceEngine::new(spec, BatchPolicy { max_batch: 8, max_wait_ticks: 16 }, 1);
    let untraced = engine.run(&trace);
    let mut recorder = TraceRecorder::new();
    let traced = engine.run_traced(&trace, &[], &mut recorder);
    assert_eq!(
        untraced.responses_json(),
        traced.responses_json(),
        "responses must be byte-identical tracing-on vs tracing-off"
    );
    let events = recorder.len();
    let untraced_ns = best_of(reps, || engine.run(&trace));
    let traced_ns = best_of(reps, || {
        recorder.clear();
        engine.run_traced(&trace, &[], &mut recorder)
    });
    ObsOverheadBench { requests, events, untraced_ns, traced_ns, digest: traced.responses_digest() }
}

/// Builds the **deterministic** summary document committed as `BENCH_hot_summary.json` and
/// gated by `bench_regression`: kernel output digests, the ε stream digest, and the measured
/// steady-state allocation counts (which must be zero) — no wall-clock values.
pub fn summary_json(
    kernels: &[KernelBench],
    epsilon: &EpsilonBench,
    train_allocs: u64,
    serve_allocs: u64,
    traced_allocs: u64,
) -> Json {
    Json::obj([
        (
            "kernels",
            Json::Array(
                kernels
                    .iter()
                    .map(|k| {
                        Json::obj([
                            ("name", Json::Str(k.name.to_string())),
                            ("op", Json::Str(k.op.to_string())),
                            ("digest", Json::Str(k.digest.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "epsilon",
            Json::obj([
                ("count", Json::UInt(epsilon.count as u64)),
                ("digest", Json::Str(epsilon.digest.clone())),
            ]),
        ),
        (
            "steady_state_allocations",
            Json::obj([
                ("per_training_iteration", Json::UInt(train_allocs)),
                ("per_served_request", Json::UInt(serve_allocs)),
                ("per_traced_request", Json::UInt(traced_allocs)),
            ]),
        ),
    ])
}

/// Builds the full (machine-dependent) report written to `BENCH_hot.json` — timings,
/// speedups and the geometric mean alongside everything in the summary, plus PR 8's
/// per-tier GEMM arms, the fused-serving arm and the named `speedups` object gated by
/// `bench_regression --min-speedup`.
#[allow(clippy::too_many_arguments)]
pub fn full_json(
    kernels: &[KernelBench],
    tiers: &[TierBench],
    fused: &FusedServeBench,
    obs: &ObsOverheadBench,
    epsilon: &EpsilonBench,
    train_allocs: u64,
    serve_allocs: u64,
    traced_allocs: u64,
) -> Json {
    let speedups: Vec<f64> = kernels.iter().map(KernelBench::speedup).collect();
    let simd: Vec<f64> = tiers.iter().map(TierBench::simd_speedup).collect();
    Json::obj([
        (
            "kernels",
            Json::Array(
                kernels
                    .iter()
                    .map(|k| {
                        Json::obj([
                            ("name", Json::Str(k.name.to_string())),
                            ("op", Json::Str(k.op.to_string())),
                            ("reference_ns", Json::Float(k.reference_ns)),
                            ("packed_ns", Json::Float(k.packed_ns)),
                            ("speedup", Json::Float(k.speedup())),
                            ("digest", Json::Str(k.digest.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("geometric_mean_speedup", Json::Float(geometric_mean(&speedups))),
        (
            "kernel_tiers",
            Json::Array(
                tiers
                    .iter()
                    .map(|t| {
                        Json::obj([
                            ("name", Json::Str(t.name.to_string())),
                            ("m", Json::UInt(t.m as u64)),
                            ("k", Json::UInt(t.k as u64)),
                            ("n", Json::UInt(t.n as u64)),
                            (
                                "tier_ns",
                                Json::obj(
                                    t.tier_ns
                                        .iter()
                                        .map(|(tier, ns)| (tier.label(), Json::Float(*ns)))
                                        .collect::<Vec<_>>(),
                                ),
                            ),
                            ("simd_speedup", Json::Float(t.simd_speedup())),
                            ("digest", Json::Str(t.digest.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fused_serving",
            Json::obj([
                ("samples", Json::UInt(fused.samples as u64)),
                ("per_sample_ns", Json::Float(fused.per_sample_ns)),
                ("fused_ns", Json::Float(fused.fused_ns)),
                ("speedup", Json::Float(fused.speedup())),
                ("digest", Json::Str(fused.digest.clone())),
            ]),
        ),
        (
            "obs_serving",
            Json::obj([
                ("requests", Json::UInt(obs.requests as u64)),
                ("events", Json::UInt(obs.events as u64)),
                ("untraced_ns", Json::Float(obs.untraced_ns)),
                ("traced_ns", Json::Float(obs.traced_ns)),
                ("overhead", Json::Float(obs.overhead())),
                ("digest", Json::Str(obs.digest.clone())),
            ]),
        ),
        (
            "speedups",
            Json::obj([
                ("simd_gemm", Json::Float(geometric_mean(&simd))),
                ("fused_sampling", Json::Float(fused.speedup())),
                ("obs_overhead", Json::Float(obs.overhead())),
            ]),
        ),
        (
            "epsilon",
            Json::obj([
                ("count", Json::UInt(epsilon.count as u64)),
                ("serial_ns", Json::Float(epsilon.serial_ns)),
                ("word_parallel_ns", Json::Float(epsilon.word_parallel_ns)),
                ("speedup", Json::Float(epsilon.speedup())),
                ("digest", Json::Str(epsilon.digest.clone())),
            ]),
        ),
        (
            "steady_state_allocations",
            Json::obj([
                ("per_training_iteration", Json::UInt(train_allocs)),
                ("per_served_request", Json::UInt(serve_allocs)),
                ("per_traced_request", Json::UInt(traced_allocs)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_benches_cover_every_geometry_and_direction() {
        let benches = run_kernel_benches(1);
        assert_eq!(benches.len(), hot_geometries().len() * 3);
        for b in &benches {
            assert!(b.reference_ns > 0.0 && b.packed_ns > 0.0);
            assert_eq!(b.digest.len(), 16);
        }
    }

    #[test]
    fn tier_benches_cover_every_tier_and_assert_bit_exactness() {
        let tiers = run_tier_benches(1);
        assert_eq!(tiers.len(), tier_shapes().len());
        for t in &tiers {
            assert_eq!(t.tier_ns.len(), KernelTier::ALL.len());
            assert_eq!(t.digest.len(), 16);
            for tier in KernelTier::ALL {
                assert!(t.ns(tier) > 0.0, "{}: {} has no timing", t.name, tier.label());
            }
        }
    }

    #[test]
    fn fused_serve_bench_pins_byte_identity_before_timing() {
        let fused = run_fused_serve_bench(1, 4);
        assert_eq!(fused.samples, 4);
        assert_eq!(fused.digest.len(), 16);
        assert!(fused.per_sample_ns > 0.0 && fused.fused_ns > 0.0);
    }

    #[test]
    fn full_json_names_the_gated_speedups() {
        let kernels = run_kernel_benches(1);
        let tiers = run_tier_benches(1);
        let fused = run_fused_serve_bench(1, 4);
        let obs = run_obs_overhead_bench(1, 8);
        let epsilon = run_epsilon_bench(1, 128);
        let doc = full_json(&kernels, &tiers, &fused, &obs, &epsilon, 0, 0, 0).to_compact();
        assert!(doc.contains("\"speedups\""));
        assert!(doc.contains("\"simd_gemm\""));
        assert!(doc.contains("\"fused_sampling\""));
        assert!(doc.contains("\"obs_overhead\""));
    }

    #[test]
    fn obs_overhead_bench_pins_byte_identity_before_timing() {
        let obs = run_obs_overhead_bench(1, 8);
        assert_eq!(obs.requests, 8);
        assert!(obs.events > 0, "the traced run must record events");
        assert_eq!(obs.digest.len(), 16);
        assert!(obs.untraced_ns > 0.0 && obs.traced_ns > 0.0);
    }

    #[test]
    fn traced_probe_records_the_full_stage_sequence() {
        let mut probe = TracedServeProbe::new();
        probe.run(3);
        assert_eq!(probe.events_recorded(), 3 * TracedServeProbe::EVENTS_PER_REQUEST);
        assert!(probe.last_entropy() >= 0.0);
        // Re-running clears and re-records — the window, not the history, is bounded.
        probe.run(2);
        assert_eq!(probe.events_recorded(), 2 * TracedServeProbe::EVENTS_PER_REQUEST);
    }

    #[test]
    fn epsilon_bench_pins_the_stream() {
        let e = run_epsilon_bench(1, 256);
        assert_eq!(e.count, 256);
        assert_eq!(e.digest.len(), 16);
    }

    #[test]
    fn geometric_mean_of_constant_ratios_is_the_ratio() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn probes_run_and_produce_work() {
        let mut t = TrainingProbe::new();
        t.run(2);
        let mut s = ServeProbe::new();
        s.run(2);
        assert!(s.last_entropy() >= 0.0);
        let mut m = MomentProbe::new();
        m.run(2);
        assert!(m.last_entropy() >= 0.0);
        assert_eq!(m.last_samples(), 0, "moment responses must be marked analytic");
    }

    #[test]
    fn summary_json_is_deterministic_and_timing_free() {
        let kernels = run_kernel_benches(1);
        let epsilon = run_epsilon_bench(1, 128);
        let a = summary_json(&kernels, &epsilon, 0, 0, 0).to_compact();
        let kernels2 = run_kernel_benches(2);
        let epsilon2 = run_epsilon_bench(2, 128);
        let b = summary_json(&kernels2, &epsilon2, 0, 0, 0).to_compact();
        assert_eq!(a, b, "summary must not depend on timings or rep counts");
        assert!(!a.contains("_ns"), "summary must not embed wall-clock fields");
    }
}
