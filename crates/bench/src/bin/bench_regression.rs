//! `bench_regression`: the CI drift gate. Compares a freshly produced benchmark summary
//! against the committed baseline and fails (exit 1) when any headline scalar drifts beyond
//! tolerance — so a simulator, model or engine change can no longer shift the recorded
//! numbers without the diff saying so.
//!
//! Both inputs are JSON documents produced by this repo's own deterministic serializer
//! (`BENCH_sweep_summary.json` from `sweep_all`, `BENCH_serve_summary.json` from
//! `serve_bench`, `BENCH_cluster_summary.json` from `cluster_bench`). Structure must match
//! exactly; numeric leaves may differ by the relative
//! tolerance (default 1e-9 — the summaries are deterministic, so the default is effectively
//! "identical up to float printing").
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin bench_regression -- \
//!   --baseline BENCH_sweep_summary.json --fresh out/BENCH_sweep_summary.json \
//!   [--tolerance 1e-9]`

use shift_bnn::sweep::json::Json;
use shift_bnn_bench::regression::compare;

struct Args {
    baseline: String,
    fresh: String,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = 1e-9;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(it.next().expect("--baseline needs a path")),
            "--fresh" => fresh = Some(it.next().expect("--fresh needs a path")),
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a value");
                tolerance = v.parse().expect("--tolerance must be a float");
                assert!(tolerance >= 0.0, "--tolerance must be non-negative");
            }
            other => panic!(
                "unknown argument {other} (expected --baseline PATH, --fresh PATH, --tolerance X)"
            ),
        }
    }
    Args {
        baseline: baseline.expect("--baseline is required"),
        fresh: fresh.expect("--fresh is required"),
        tolerance,
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() {
    let args = parse_args();
    let baseline = load(&args.baseline);
    let fresh = load(&args.fresh);
    let mismatches = compare(&baseline, &fresh, args.tolerance);
    if mismatches.is_empty() {
        println!(
            "bench_regression: {} matches {} within tolerance {:e}",
            args.fresh, args.baseline, args.tolerance
        );
        return;
    }
    eprintln!(
        "bench_regression: {} drifted from {} ({} mismatch(es), tolerance {:e}):",
        args.fresh,
        args.baseline,
        mismatches.len(),
        args.tolerance
    );
    for mismatch in &mismatches {
        eprintln!("  {mismatch}");
    }
    eprintln!(
        "\nIf the drift is intentional, regenerate the committed baseline (run sweep_all / \
         serve_bench / cluster_bench without --reduced at the repo root) and commit the \
         updated summary."
    );
    std::process::exit(1);
}
