//! `bench_regression`: the CI drift gate. Compares a freshly produced benchmark summary
//! against the committed baseline and fails (exit 1) when any headline scalar drifts beyond
//! tolerance — so a simulator, model or engine change can no longer shift the recorded
//! numbers without the diff saying so.
//!
//! Both inputs are JSON documents produced by this repo's own deterministic serializer
//! (`BENCH_sweep_summary.json` from `sweep_all`, `BENCH_serve_summary.json` from
//! `serve_bench`, `BENCH_cluster_summary.json` from `cluster_bench`). Structure must match
//! exactly; numeric leaves may differ by the relative
//! tolerance (default 1e-9 — the summaries are deterministic, so the default is effectively
//! "identical up to float printing").
//!
//! A second, independent gate guards the PR 8 kernel-tier work: `--speedups FILE` points at a
//! full `BENCH_hot.json` report (whose `speedups` object names machine-measured ratios like
//! `simd_gemm` and `fused_sampling`), and each repeatable `--min-speedup name:floor` fails the
//! run when that named ratio falls below its floor. Drift comparison and speedup gating can
//! run together or alone.
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin bench_regression -- \
//!   [--baseline BENCH_sweep_summary.json --fresh out/BENCH_sweep_summary.json] \
//!   [--tolerance 1e-9] [--speedups out/BENCH_hot.json] \
//!   [--min-speedup simd_gemm:1.3] [--min-speedup fused_sampling:1.5]`

use shift_bnn::sweep::json::Json;
use shift_bnn_bench::regression::compare;

struct Args {
    baseline: Option<String>,
    fresh: Option<String>,
    tolerance: f64,
    speedups: Option<String>,
    min_speedups: Vec<(String, f64)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: None,
        fresh: None,
        tolerance: 1e-9,
        speedups: None,
        min_speedups: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => args.baseline = Some(it.next().expect("--baseline needs a path")),
            "--fresh" => args.fresh = Some(it.next().expect("--fresh needs a path")),
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a value");
                args.tolerance = v.parse().expect("--tolerance must be a float");
                assert!(args.tolerance >= 0.0, "--tolerance must be non-negative");
            }
            "--speedups" => args.speedups = Some(it.next().expect("--speedups needs a path")),
            "--min-speedup" => {
                let v = it.next().expect("--min-speedup needs name:floor");
                let (name, floor) = v
                    .split_once(':')
                    .expect("--min-speedup must be name:floor, e.g. simd_gemm:1.3");
                let floor: f64 = floor.parse().expect("--min-speedup floor must be a float");
                assert!(floor > 0.0, "--min-speedup floor must be positive");
                args.min_speedups.push((name.to_string(), floor));
            }
            other => panic!(
                "unknown argument {other} (expected --baseline PATH, --fresh PATH, \
                 --tolerance X, --speedups PATH, --min-speedup name:floor)"
            ),
        }
    }
    assert_eq!(
        args.baseline.is_some(),
        args.fresh.is_some(),
        "--baseline and --fresh must be given together"
    );
    assert!(
        args.min_speedups.is_empty() || args.speedups.is_some(),
        "--min-speedup needs --speedups FILE to read the measured ratios from"
    );
    assert!(
        args.baseline.is_some() || args.speedups.is_some(),
        "nothing to do: give --baseline/--fresh, --speedups gates, or both"
    );
    args
}

/// Reads the named ratio from the report's top-level `speedups` object.
fn named_speedup(report: &Json, path: &str, name: &str) -> f64 {
    let Json::Object(root) = report else { panic!("{path}: expected a JSON object") };
    let speedups = root
        .iter()
        .find(|(k, _)| k == "speedups")
        .unwrap_or_else(|| panic!("{path}: no `speedups` object"));
    let Json::Object(pairs) = &speedups.1 else { panic!("{path}: `speedups` must be an object") };
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, Json::Float(v))) => *v,
        Some((_, Json::UInt(v))) => *v as f64,
        Some(_) => panic!("{path}: speedups.{name} is not numeric"),
        None => panic!("{path}: no speedups.{name} (available: {:?})", {
            pairs.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>()
        }),
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() {
    let args = parse_args();

    if let (Some(baseline_path), Some(fresh_path)) = (&args.baseline, &args.fresh) {
        let baseline = load(baseline_path);
        let fresh = load(fresh_path);
        let mismatches = compare(&baseline, &fresh, args.tolerance);
        if mismatches.is_empty() {
            println!(
                "bench_regression: {fresh_path} matches {baseline_path} within tolerance {:e}",
                args.tolerance
            );
        } else {
            eprintln!(
                "bench_regression: {fresh_path} drifted from {baseline_path} ({} mismatch(es), \
                 tolerance {:e}):",
                mismatches.len(),
                args.tolerance
            );
            for mismatch in &mismatches {
                eprintln!("  {mismatch}");
            }
            eprintln!(
                "\nIf the drift is intentional, regenerate the committed baseline (run sweep_all \
                 / serve_bench / cluster_bench without --reduced at the repo root) and commit \
                 the updated summary."
            );
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.speedups {
        let report = load(path);
        let mut failed = false;
        for (name, floor) in &args.min_speedups {
            let measured = named_speedup(&report, path, name);
            if measured >= *floor {
                println!(
                    "bench_regression: speedup {name} = {measured:.2}x meets floor {floor:.2}x"
                );
            } else {
                eprintln!(
                    "bench_regression: speedup {name} = {measured:.2}x below floor {floor:.2}x"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
