//! `chaos_bench`: drives the deterministic fault-injection grid — five fault scenarios
//! (healthy baseline, single crash with and without the degradation ladder, a slow shard,
//! and an everything-at-once crash storm) × the four arrival processes — on a 4-shard
//! Monte-Carlo cluster, re-runs the grid at a different per-shard worker count and asserts
//! the two passes are **byte-identical**, then checks the availability gates the issue
//! pins: ≥ 99% on the single crash with the ladder armed, < 95% with it disarmed. Emits:
//!
//! * `BENCH_chaos.json` — the full record, including machine-dependent wall clocks and a
//!   `speedups.ladder_availability` ratio for the nightly `bench_regression` gate (a CI
//!   artifact, not committed);
//! * `BENCH_chaos_summary.json` — the deterministic tick-domain scalars (availability,
//!   retry counts, degradation-mode occupancy, p50–p999 tails, response/event/fault
//!   digests per grid point; the committed regression baseline, checked by
//!   `bench_regression` and the golden suite).
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin chaos_bench -- [--reduced]
//! [--workers N] [--out PATH] [--summary PATH]`

use std::time::Instant;

use shift_bnn::pool;
use shift_bnn::sweep::json::Json;
use shift_bnn_bench::chaos_views::{
    chaos_request_count, chaos_summary_json, grid_availability, run_chaos_grid,
};
use shift_bnn_bench::{num, percent, print_table};

struct Args {
    reduced: bool,
    workers: usize,
    out: String,
    summary: String,
}

fn parse_args() -> Args {
    // Like cluster_bench: even on a single-CPU machine the parallel pass uses at least two
    // workers per shard so the byte-identity assertion exercises the pooled scheduler.
    let mut args = Args {
        reduced: false,
        workers: pool::default_workers().max(2),
        out: "BENCH_chaos.json".to_string(),
        summary: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reduced" => args.reduced = true,
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v.parse().expect("--workers must be a positive integer");
                assert!(args.workers >= 1, "--workers must be >= 1");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--summary" => args.summary = it.next().expect("--summary needs a path"),
            other => panic!(
                "unknown argument {other} (expected --reduced, --workers N, --out PATH, --summary PATH)"
            ),
        }
    }
    if args.summary.is_empty() {
        // A reduced run's summary differs from the committed full baseline (shorter traces),
        // so it defaults to a sibling path rather than clobbering the committed file.
        args.summary = if args.reduced {
            "BENCH_chaos_summary_reduced.json".to_string()
        } else {
            "BENCH_chaos_summary.json".to_string()
        };
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "chaos grid: 20 configs (5 fault scenarios x 4 arrival processes), {} requests each \
         on 4 shards; 1 worker/shard vs {} workers/shard",
        chaos_request_count(args.reduced),
        args.workers
    );

    // Serial pass: timed per grid, reports kept as the canonical results.
    let serial_start = Instant::now();
    let grid = run_chaos_grid(args.reduced, 1);
    let serial_ns = serial_start.elapsed().as_nanos();

    // Parallel pass: every grid point's report must serialize byte-identically — the
    // fault-path determinism contract, asserted at runtime on every benchmark run.
    let parallel_start = Instant::now();
    let parallel = run_chaos_grid(args.reduced, args.workers);
    let parallel_ns = parallel_start.elapsed().as_nanos();
    for ((config, serial_report), (_, parallel_report)) in grid.iter().zip(&parallel) {
        assert_eq!(
            serial_report.to_json().to_compact(),
            parallel_report.to_json().to_compact(),
            "{} x {}: 1-worker and {}-worker chaos reports must be byte-identical",
            config.scenario.name,
            config.arrival.label(),
            args.workers
        );
    }

    // The acceptance gates: the degradation ladder is what keeps a crashed cluster
    // answering. These hold in both full and reduced runs (the fault windows scale with
    // the trace), so CI enforces them on every invocation, not just nightly.
    let with_ladder = grid_availability(&grid, "single_crash", "uniform");
    let without_ladder = grid_availability(&grid, "single_crash_no_ladder", "uniform");
    assert!(
        with_ladder >= 0.99,
        "single-crash availability with the ladder must stay >= 99%, got {with_ladder}"
    );
    assert!(
        without_ladder < 0.95,
        "single-crash availability without the ladder should fall under 95%, got {without_ladder}"
    );
    let ladder_availability = with_ladder / without_ladder;

    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|(config, report)| {
            let (_, reduced_s, moment) = report.degrade_occupancy();
            vec![
                config.scenario.name.to_string(),
                config.arrival.label(),
                percent(report.availability()),
                report.faults.retries.len().to_string(),
                reduced_s.to_string(),
                moment.to_string(),
                report.latency_percentile(0.50).to_string(),
                report.latency_percentile(0.99).to_string(),
                report.latency_percentile(0.999).to_string(),
            ]
        })
        .collect();
    print_table(
        "Chaos grid (simulated ticks; 4 shards, cap-12 queues, S=16 Monte-Carlo)",
        &["scenario", "arrival", "avail", "retries", "S=4", "moment", "p50", "p99", "p999"],
        &rows,
    );
    println!(
        "\nsingle-crash availability: {} with the ladder vs {} without ({}x)",
        percent(with_ladder),
        percent(without_ladder),
        num(ladder_availability, 2),
    );

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "wall clock: grid 1 worker/shard {} ms, {} workers/shard {} ms; reports byte-identical",
        num(serial_ns as f64 / 1e6, 1),
        args.workers,
        num(parallel_ns as f64 / 1e6, 1),
    );

    // Full artifact: summary records plus wall clocks, the gate ratio, and per-grid-point
    // full reports.
    let summary = chaos_summary_json(&grid, args.reduced);
    let bench = Json::obj([
        ("schema", Json::Str("shift-bnn-bench-chaos/v1".into())),
        ("reduced", Json::Bool(args.reduced)),
        (
            "timing",
            Json::obj([
                ("available_parallelism", Json::UInt(cpus as u64)),
                ("workers_serial", Json::UInt(1)),
                ("workers_parallel", Json::UInt(args.workers as u64)),
                ("serial_total_ns", Json::UInt(serial_ns as u64)),
                ("parallel_total_ns", Json::UInt(parallel_ns as u64)),
                ("reports_byte_identical", Json::Bool(true)),
            ]),
        ),
        ("speedups", Json::obj([("ladder_availability", Json::Float(ladder_availability))])),
        ("summary", summary.clone()),
        ("runs", Json::Array(grid.iter().map(|(_, report)| report.to_json()).collect())),
    ]);
    std::fs::write(&args.out, bench.to_pretty() + "\n").expect("write BENCH_chaos.json");
    std::fs::write(&args.summary, summary.to_pretty() + "\n")
        .expect("write BENCH_chaos_summary.json");
    println!("wrote {} and {} (20 grid configs)", args.out, args.summary);
}
