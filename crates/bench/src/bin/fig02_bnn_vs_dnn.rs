//! Figure 2: BNN vs DNN training cost on the baseline (MN-mapping, Diannao-like) accelerator.
//!
//! For every model family and sample count S ∈ {1, 8, 16, 24, 32}, prints the BNN's off-chip
//! data transfer, energy consumption and latency normalized to the corresponding DNN model
//! (trained with a single model, no sampling).

use bnn_arch::EnergyModel;
use bnn_models::ModelKind;
use shift_bnn::designs::DesignKind;
use shift_bnn::evaluate::evaluate_with;
use shift_bnn_bench::{num, print_table};

fn main() {
    let energy = EnergyModel::default();
    let samples = [1usize, 8, 16, 24, 32];
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        let dnn = evaluate_with(DesignKind::MnAcc, &kind.dnn(), 1, &energy);
        for &s in &samples {
            let bnn = evaluate_with(DesignKind::MnAcc, &kind.bnn(), s, &energy);
            rows.push(vec![
                format!("{} / {}", kind.dnn().name, kind.paper_name()),
                format!("S={s}"),
                num(bnn.report.dram_bytes as f64 / dnn.report.dram_bytes as f64, 1),
                num(bnn.energy_mj() / dnn.energy_mj(), 1),
                num(bnn.latency_s() / dnn.latency_s(), 1),
            ]);
        }
    }
    print_table(
        "Figure 2: BNN cost normalized to the corresponding DNN (MN-Acc baseline)",
        &["model", "samples", "data transfer", "energy", "latency"],
        &rows,
    );

    // The paper's headline averages: ~9.1x more traffic at S=8 and ~35.3x at S=32.
    for &s in &[8usize, 32] {
        let mut ratios = Vec::new();
        for kind in ModelKind::all() {
            let dnn = evaluate_with(DesignKind::MnAcc, &kind.dnn(), 1, &energy);
            let bnn = evaluate_with(DesignKind::MnAcc, &kind.bnn(), s, &energy);
            ratios.push(bnn.report.dram_bytes as f64 / dnn.report.dram_bytes as f64);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "average data-transfer increase at S={s}: {avg:.1}x (paper: {})",
            if s == 8 { "9.1x" } else { "35.3x" }
        );
    }
}
