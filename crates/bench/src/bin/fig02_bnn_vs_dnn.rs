//! Figure 2: BNN vs DNN training cost on the baseline (MN-mapping, Diannao-like) accelerator.
//!
//! For every model family and sample count S ∈ {1, 8, 16, 24, 32}, prints the BNN's off-chip
//! data transfer, energy consumption and latency normalized to the corresponding DNN model
//! (trained with a single model, no sampling). A thin view over the shared design-space sweep.

use shift_bnn::sweep::paper_sweep;
use shift_bnn_bench::views::fig02;
use shift_bnn_bench::{num, print_table};

fn main() {
    let view = fig02(&paper_sweep());
    let rows: Vec<Vec<String>> = view
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("S={}", r.samples),
                num(r.transfer, 1),
                num(r.energy, 1),
                num(r.latency, 1),
            ]
        })
        .collect();
    print_table(
        "Figure 2: BNN cost normalized to the corresponding DNN (MN-Acc baseline)",
        &["model", "samples", "data transfer", "energy", "latency"],
        &rows,
    );

    // The paper's headline averages: ~9.1x more traffic at S=8 and ~35.3x at S=32.
    for &(s, avg) in &view.average_transfer {
        println!(
            "average data-transfer increase at S={s}: {avg:.1}x (paper: {})",
            if s == 8 { "9.1x" } else { "35.3x" }
        );
    }
}
