//! Figure 9: training loss and validation accuracy over epochs for vanilla BNN training
//! (ε stored and replayed) versus Shift-BNN (ε retrieved by LFSR reversion) on a B-LeNet-style
//! network.
//!
//! The paper's CIFAR-10 is replaced by a deterministic synthetic dataset of the same tensor
//! shape (see DESIGN.md); the claim under test — that LFSR reversion leaves the training
//! trajectory bit-identical — does not depend on the dataset.

use bnn_tensor::Precision;
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn_bench::{num, percent, print_table};

fn build(strategy: EpsilonStrategy) -> Trainer {
    let mut rng = StdRng::seed_from_u64(2021);
    let config = BayesConfig { kl_weight: 1e-4, ..BayesConfig::default() }
        .with_precision(Precision::PAPER_16BIT);
    let network = Network::bayes_lenet(&[3, 16, 16], 4, config, &mut rng);
    Trainer::new(network, TrainerConfig { samples: 4, learning_rate: 0.05, strategy, seed: 7 })
        .expect("trainer construction")
}

fn main() {
    // High per-example noise keeps the task from being trivially separable, so the curve has a
    // visible learning phase like the paper's Fig. 9.
    let dataset = SyntheticDataset::generate(&[3, 16, 16], 4, 20, 1.6, 31);
    let (train, val) = dataset.split(0.75);
    let mut baseline = build(EpsilonStrategy::StoreReplay);
    let mut shift = build(EpsilonStrategy::LfsrRetrieve);

    let epochs = 12;
    let mut rows = Vec::new();
    let mut identical = true;
    for epoch in 1..=epochs {
        let mb = baseline.train_epoch(&train).expect("baseline epoch");
        let ms = shift.train_epoch(&train).expect("shift epoch");
        let ab = baseline.evaluate(&val).expect("baseline eval");
        let asft = shift.evaluate(&val).expect("shift eval");
        identical &= mb == ms && (ab - asft).abs() < f64::EPSILON;
        rows.push(vec![
            epoch.to_string(),
            num(mb.mean_loss as f64, 4),
            num(ms.mean_loss as f64, 4),
            percent(ab),
            percent(asft),
        ]);
    }
    print_table(
        "Figure 9: training curve, vanilla BNN training vs Shift-BNN (B-LeNet, synthetic CIFAR-10 stand-in)",
        &["epoch", "loss (baseline)", "loss (Shift-BNN)", "val acc (baseline)", "val acc (Shift-BNN)"],
        &rows,
    );
    println!(
        "baseline stored epsilons: {}, Shift-BNN stored epsilons: {}",
        baseline.stored_epsilons(),
        shift.stored_epsilons()
    );
    println!(
        "curves bit-identical: {identical} (paper: Shift-BNN does not affect convergence or final accuracy)"
    );
}
