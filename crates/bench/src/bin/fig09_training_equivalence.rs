//! Figure 9: training loss and validation accuracy over epochs for vanilla BNN training
//! (ε stored and replayed) versus Shift-BNN (ε retrieved by LFSR reversion) on a B-LeNet-style
//! network.
//!
//! The paper's CIFAR-10 is replaced by a deterministic synthetic dataset of the same tensor
//! shape (see DESIGN.md); the claim under test — that LFSR reversion leaves the training
//! trajectory bit-identical — does not depend on the dataset. The two training arms run in
//! parallel on the sweep engine's worker pool; see [`shift_bnn_bench::views::fig09`].

use shift_bnn_bench::views::fig09;
use shift_bnn_bench::{num, percent, print_table};

fn main() {
    let view = fig09(12);
    let rows: Vec<Vec<String>> = view
        .rows
        .iter()
        .map(|r| {
            vec![
                r.epoch.to_string(),
                num(r.loss_baseline as f64, 4),
                num(r.loss_shift as f64, 4),
                percent(r.acc_baseline),
                percent(r.acc_shift),
            ]
        })
        .collect();
    print_table(
        "Figure 9: training curve, vanilla BNN training vs Shift-BNN (B-LeNet, synthetic CIFAR-10 stand-in)",
        &["epoch", "loss (baseline)", "loss (Shift-BNN)", "val acc (baseline)", "val acc (Shift-BNN)"],
        &rows,
    );
    println!(
        "baseline stored epsilons: {}, Shift-BNN stored epsilons: {}",
        view.baseline_stored, view.shift_stored
    );
    println!(
        "curves bit-identical: {} (paper: Shift-BNN does not affect convergence or final accuracy)",
        view.identical
    );
}
