//! `sweep_all`: executes the full paper design-space grid — designs × models × sample counts ×
//! precisions — through the sweep engine, once on a single worker and once on the full
//! work-stealing pool, verifies the two reports serialize byte-identically, and emits two
//! files:
//!
//! * `BENCH_sweep.json` — the full record (every point's latency / energy / traffic plus both
//!   wall clocks). ~14k lines; uploaded as a CI artifact, **not** committed;
//! * `BENCH_sweep_summary.json` — the compact deterministic reference-slice summary
//!   ([`shift_bnn::sweep::summary`]), which *is* committed and regression-checked by
//!   `bench_regression` and the golden suite. Because the summary only reads the shared
//!   S = 16 / 16-bit slice, a `--reduced` CI run reproduces the committed bytes exactly.
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin sweep_all -- [--reduced]
//! [--workers N] [--out PATH] [--summary PATH]`

use std::time::Instant;

use bnn_arch::EnergyModel;
use shift_bnn::sweep::json::Json;
use shift_bnn::sweep::summary::SweepSummary;
use shift_bnn::sweep::{pool, run_sweep, SweepGrid, SweepReport};
use shift_bnn_bench::{num, print_table};

struct Args {
    reduced: bool,
    workers: usize,
    out: String,
    summary: String,
}

fn parse_args() -> Args {
    // Even on a single-CPU machine the parallel configuration runs at least two workers, so
    // the byte-identity check always exercises the multi-threaded scheduler (the speedup is
    // then bounded by the hardware, and recorded as such).
    let mut args = Args {
        reduced: false,
        workers: pool::default_workers().max(2),
        out: "BENCH_sweep.json".to_string(),
        summary: "BENCH_sweep_summary.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reduced" => args.reduced = true,
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v.parse().expect("--workers must be a positive integer");
                assert!(args.workers >= 1, "--workers must be >= 1");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--summary" => args.summary = it.next().expect("--summary needs a path"),
            other => {
                panic!(
                    "unknown argument {other} (expected --reduced, --workers N, --out PATH, --summary PATH)"
                )
            }
        }
    }
    args
}

/// Runs `reps` sweeps of `grid` on `workers` threads, returning the total wall time in
/// nanoseconds and the last report.
fn timed_sweeps(grid: &SweepGrid, workers: usize, reps: u32) -> (u128, SweepReport) {
    let energy = EnergyModel::default();
    let start = Instant::now();
    let mut report = run_sweep(grid, workers, &energy);
    for _ in 1..reps {
        report = run_sweep(grid, workers, &energy);
    }
    (start.elapsed().as_nanos(), report)
}

fn main() {
    let args = parse_args();
    let grid = if args.reduced { SweepGrid::reduced() } else { SweepGrid::paper_full() };
    println!(
        "sweep grid: {} designs x {} models x {} sample counts x {} precisions = {} points",
        grid.designs.len(),
        grid.models.len(),
        grid.sample_counts.len(),
        grid.precisions.len(),
        grid.len()
    );

    // Calibrate the repetition count so each measured configuration runs for ~0.5 s or more —
    // a single grid pass is only milliseconds of analytic simulation, too short to time a
    // speedup honestly.
    let calibration = Instant::now();
    let _ = run_sweep(&grid, 1, &EnergyModel::default());
    let single_pass_ns = calibration.elapsed().as_nanos().max(1);
    let reps = (500_000_000u128.div_ceil(single_pass_ns)).clamp(1, 200) as u32;
    println!(
        "calibration: one 1-worker pass = {:.1} ms; timing {reps} passes per configuration",
        single_pass_ns as f64 / 1e6
    );

    let (serial_ns, serial_report) = timed_sweeps(&grid, 1, reps);
    let (parallel_ns, parallel_report) = timed_sweeps(&grid, args.workers, reps);

    let serial_json = serial_report.to_json_string();
    let parallel_json = parallel_report.to_json_string();
    assert_eq!(
        serial_json, parallel_json,
        "1-worker and {}-worker sweeps must serialize byte-identically",
        args.workers
    );

    let speedup = serial_ns as f64 / parallel_ns as f64;
    print_table(
        "Design-space sweep timing (same grid, same JSON, different worker counts)",
        &["workers", "passes", "total (ms)", "per pass (ms)", "speedup"],
        &[
            vec![
                "1".to_string(),
                reps.to_string(),
                num(serial_ns as f64 / 1e6, 1),
                num(serial_ns as f64 / 1e6 / reps as f64, 2),
                "1.00x".to_string(),
            ],
            vec![
                args.workers.to_string(),
                reps.to_string(),
                num(parallel_ns as f64 / 1e6, 1),
                num(parallel_ns as f64 / 1e6 / reps as f64, 2),
                format!("{speedup:.2}x"),
            ],
        ],
    );
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if args.workers > 1 && speedup <= 1.0 {
        if cpus == 1 {
            println!(
                "note: this machine exposes a single CPU; worker threads cannot run concurrently, so no speedup is expected here"
            );
        } else {
            println!("warning: no parallel speedup measured (loaded machine or tiny grid?)");
        }
    }

    let bench = Json::obj([
        ("schema", Json::Str("shift-bnn-bench-sweep/v1".into())),
        ("reduced_grid", Json::Bool(args.reduced)),
        (
            "timing",
            Json::obj([
                ("passes", Json::UInt(reps as u64)),
                (
                    "available_parallelism",
                    Json::UInt(
                        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u64
                    ),
                ),
                ("workers_serial", Json::UInt(1)),
                ("workers_parallel", Json::UInt(args.workers as u64)),
                ("serial_total_ns", Json::UInt(serial_ns as u64)),
                ("parallel_total_ns", Json::UInt(parallel_ns as u64)),
                ("speedup", Json::Float(speedup)),
                ("json_byte_identical", Json::Bool(true)),
            ]),
        ),
        ("sweep", serial_report.to_json()),
    ]);
    std::fs::write(&args.out, bench.to_pretty() + "\n").expect("write BENCH_sweep.json");
    let summary = SweepSummary::from_report(&serial_report);
    std::fs::write(&args.summary, summary.to_json_string())
        .expect("write BENCH_sweep_summary.json");
    println!(
        "wrote {} ({} grid points) and {} ({} reference-slice records)",
        args.out,
        serial_report.records.len(),
        args.summary,
        summary.records.len()
    );
}
