//! Figure 13: scalability with the Monte-Carlo sample count — energy reduction of Shift-BNN
//! over RC-Acc (and MNShift-Acc over MN-Acc) plus the energy efficiency of both reversion
//! designs, for B-MLP, B-LeNet and B-VGG at S ∈ {4, 8, 16, 32, 64, 128}.

use bnn_models::ModelKind;
use shift_bnn::scalability::{sweep_samples, FIG13_SAMPLE_COUNTS};
use shift_bnn_bench::{num, percent, print_table};

fn main() {
    for kind in [ModelKind::Mlp, ModelKind::LeNet, ModelKind::Vgg16] {
        let points = sweep_samples(&kind.bnn(), &FIG13_SAMPLE_COUNTS);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("s = {}", p.samples),
                    percent(p.mnshift_energy_reduction),
                    percent(p.shift_energy_reduction),
                    num(p.mnshift_efficiency, 1),
                    num(p.shift_efficiency, 1),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 13: scalability for {}", kind.paper_name()),
            &[
                "samples",
                "energy reduction (MNShift over MN)",
                "energy reduction (Shift-BNN over RC)",
                "efficiency (MNShift, GOPS/W)",
                "efficiency (Shift-BNN, GOPS/W)",
            ],
            &rows,
        );
    }
    println!(
        "\npaper: energy savings grow with sample size (e.g. B-LeNet 55.5% at S=4 to 78.8% at S=128) and Shift-BNN stays above MNShift-Acc throughout"
    );
}
