//! Figure 13: scalability with the Monte-Carlo sample count — energy reduction of Shift-BNN
//! over RC-Acc (and MNShift-Acc over MN-Acc) plus the energy efficiency of both reversion
//! designs, for B-MLP, B-LeNet and B-VGG at S ∈ {4, 8, 16, 32, 64, 128}.
//! A thin view over the shared design-space sweep.

use shift_bnn::sweep::paper_sweep;
use shift_bnn_bench::views::fig13;
use shift_bnn_bench::{num, percent, print_table};

fn main() {
    let view = fig13(&paper_sweep());
    for (kind, points) in &view.models {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("s = {}", p.samples),
                    percent(p.mnshift_energy_reduction),
                    percent(p.shift_energy_reduction),
                    num(p.mnshift_efficiency, 1),
                    num(p.shift_efficiency, 1),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 13: scalability for {}", kind.paper_name()),
            &[
                "samples",
                "energy reduction (MNShift over MN)",
                "energy reduction (Shift-BNN over RC)",
                "efficiency (MNShift, GOPS/W)",
                "efficiency (Shift-BNN, GOPS/W)",
            ],
            &rows,
        );
    }
    println!(
        "\npaper: energy savings grow with sample size (e.g. B-LeNet 55.5% at S=4 to 78.8% at S=128) and Shift-BNN stays above MNShift-Acc throughout"
    );
}
