//! `cluster_bench`: drives the deterministic cluster simulator across (routing policy ×
//! arrival process) with real per-shard engines, re-runs the grid at a different per-shard
//! worker count and asserts the two passes are **byte-identical**, then plans the
//! large-trace stress arm (phase A only, autoscaling enabled) where p999 is a meaningful
//! tail statistic. Emits:
//!
//! * `BENCH_cluster.json` — the full record, including machine-dependent wall clocks (a CI
//!   artifact, not committed);
//! * `BENCH_cluster_summary.json` — the deterministic tick-domain scalars (p50/p95/p99/p999,
//!   shed rate, escalation rate, event + response digests per grid point; the committed
//!   regression baseline, checked by `bench_regression` and the golden suite).
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin cluster_bench -- [--reduced]
//! [--workers N] [--out PATH] [--summary PATH]`

use std::time::Instant;

use shift_bnn::pool;
use shift_bnn::sweep::json::Json;
use shift_bnn_bench::cluster_views::{
    cluster_request_count, cluster_summary_json, run_cluster_grid, run_cluster_stress,
    stress_request_count,
};
use shift_bnn_bench::{num, percent, print_table};

struct Args {
    reduced: bool,
    workers: usize,
    out: String,
    summary: String,
}

fn parse_args() -> Args {
    // Like serve_bench: even on a single-CPU machine the parallel pass uses at least two
    // workers per shard so the byte-identity assertion exercises the pooled scheduler.
    let mut args = Args {
        reduced: false,
        workers: pool::default_workers().max(2),
        out: "BENCH_cluster.json".to_string(),
        summary: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reduced" => args.reduced = true,
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v.parse().expect("--workers must be a positive integer");
                assert!(args.workers >= 1, "--workers must be >= 1");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--summary" => args.summary = it.next().expect("--summary needs a path"),
            other => panic!(
                "unknown argument {other} (expected --reduced, --workers N, --out PATH, --summary PATH)"
            ),
        }
    }
    if args.summary.is_empty() {
        // A reduced run's summary differs from the committed full baseline (shorter traces),
        // so it defaults to a sibling path rather than clobbering the committed file.
        args.summary = if args.reduced {
            "BENCH_cluster_summary_reduced.json".to_string()
        } else {
            "BENCH_cluster_summary.json".to_string()
        };
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "cluster grid: 12 configs (3 routing policies x 4 arrival processes), {} requests \
         each on 4 shards; stress arm: 4 plan-only configs, {} requests each; 1 worker/shard \
         vs {} workers/shard",
        cluster_request_count(args.reduced),
        stress_request_count(args.reduced),
        args.workers
    );

    // Serial pass: timed per grid, reports kept as the canonical results.
    let serial_start = Instant::now();
    let grid = run_cluster_grid(args.reduced, 1);
    let serial_ns = serial_start.elapsed().as_nanos();

    // Parallel pass: every grid point's report must serialize byte-identically — the
    // cluster-level determinism contract, asserted at runtime on every benchmark run.
    let parallel_start = Instant::now();
    let parallel = run_cluster_grid(args.reduced, args.workers);
    let parallel_ns = parallel_start.elapsed().as_nanos();
    for ((config, serial_report), (_, parallel_report)) in grid.iter().zip(&parallel) {
        assert_eq!(
            serial_report.to_json().to_compact(),
            parallel_report.to_json().to_compact(),
            "{} x {}: 1-worker and {}-worker cluster reports must be byte-identical",
            config.routing.label(),
            config.arrival.label(),
            args.workers
        );
    }
    let wall_speedup = serial_ns as f64 / parallel_ns as f64;

    // Stress arm: phase-A planning only, so its cost is routing arithmetic, not inference.
    let stress_start = Instant::now();
    let stress = run_cluster_stress(args.reduced);
    let stress_ns = stress_start.elapsed().as_nanos();

    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|(config, report)| {
            vec![
                config.routing.label().to_string(),
                config.arrival.label().to_string(),
                report.answered().to_string(),
                percent(report.shed_rate()),
                percent(report.escalation_rate()),
                report.latency_percentile(0.50).to_string(),
                report.latency_percentile(0.95).to_string(),
                report.latency_percentile(0.99).to_string(),
                report.latency_percentile(0.999).to_string(),
            ]
        })
        .collect();
    print_table(
        "Cluster serving (simulated ticks; 4 shards, cap-32 queues)",
        &["routing", "arrival", "answered", "shed", "escal", "p50", "p95", "p99", "p999"],
        &rows,
    );

    let stress_rows: Vec<Vec<String>> = stress
        .iter()
        .map(|(config, plan)| {
            vec![
                config.routing.label().to_string(),
                config.arrival.label().to_string(),
                plan.outcomes.len().to_string(),
                percent(plan.shed_rate()),
                plan.latency_percentile(0.99).to_string(),
                plan.latency_percentile(0.999).to_string(),
                plan.scale_events.len().to_string(),
                plan.scale_events.iter().map(|e| e.active).max().unwrap_or(1).to_string(),
            ]
        })
        .collect();
    print_table(
        "Stress arm (plan-only, autoscaling 1..4 shards)",
        &["routing", "arrival", "requests", "shed", "p99", "p999", "scalings", "peak"],
        &stress_rows,
    );

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\nwall clock: grid 1 worker/shard {} ms, {} workers/shard {} ms; stress plan {} ms; \
         reports byte-identical",
        num(serial_ns as f64 / 1e6, 1),
        args.workers,
        num(parallel_ns as f64 / 1e6, 1),
        num(stress_ns as f64 / 1e6, 1),
    );
    if args.workers > 1 && wall_speedup <= 1.0 && cpus == 1 {
        println!(
            "note: this machine exposes a single CPU; worker threads cannot run concurrently, \
             so no wall-clock speedup is expected here"
        );
    }

    // Full artifact: summary records plus wall clocks and per-grid-point full reports.
    let summary = cluster_summary_json(&grid, &stress, args.reduced);
    let bench = Json::obj([
        ("schema", Json::Str("shift-bnn-bench-cluster/v1".into())),
        ("reduced", Json::Bool(args.reduced)),
        (
            "timing",
            Json::obj([
                ("available_parallelism", Json::UInt(cpus as u64)),
                ("workers_serial", Json::UInt(1)),
                ("workers_parallel", Json::UInt(args.workers as u64)),
                ("serial_total_ns", Json::UInt(serial_ns as u64)),
                ("parallel_total_ns", Json::UInt(parallel_ns as u64)),
                ("stress_total_ns", Json::UInt(stress_ns as u64)),
                ("wall_speedup", Json::Float(wall_speedup)),
                ("reports_byte_identical", Json::Bool(true)),
            ]),
        ),
        ("summary", summary.clone()),
        ("runs", Json::Array(grid.iter().map(|(_, report)| report.to_json()).collect())),
    ]);
    std::fs::write(&args.out, bench.to_pretty() + "\n").expect("write BENCH_cluster.json");
    std::fs::write(&args.summary, summary.to_pretty() + "\n")
        .expect("write BENCH_cluster_summary.json");
    println!("wrote {} and {} (12 grid + 4 stress configs)", args.out, args.summary);
}
