//! Table 2: FPGA resource usage and average power of the components in one Shift-BNN SPU.
//! Rendered from the shared [`shift_bnn_bench::views::table2`] view.

use bnn_arch::resource::ResourceUsage;
use shift_bnn_bench::views::table2;
use shift_bnn_bench::{num, print_table};

fn usage_row(label: &str, usage: &ResourceUsage) -> Vec<String> {
    vec![
        label.to_string(),
        usage.lut.to_string(),
        usage.ff.to_string(),
        usage.dsp.to_string(),
        usage.bram.to_string(),
        num(usage.avg_power_w, 3),
    ]
}

fn main() {
    let view = table2();
    let mut rows: Vec<Vec<String>> =
        view.components.iter().map(|(name, usage)| usage_row(name, usage)).collect();
    rows.push(usage_row("total (1 SPU)", &view.spu));
    rows.push(usage_row("total (16 SPUs + ctrl)", &view.accelerator));
    print_table(
        "Table 2: resource usage of Shift-BNN components (per SPU)",
        &["component", "LUT", "FF", "DSP", "BRAM", "Pavg (W)"],
        &rows,
    );
    println!(
        "paper (per SPU): PE tile 966/469/16/0 @0.076W, shift array 222/464/0/0 @0.016W, function units 785/399/32/0 @0.008W, GRNGs 2277/4224/0/0 @0.005W, NBin/NBout 0/0/0/48 @0.112W"
    );
}
