//! Table 2: FPGA resource usage and average power of the components in one Shift-BNN SPU.

use bnn_arch::resource::{accelerator_usage, component_usage, spu_usage, SpuComponent};
use shift_bnn::designs::DesignKind;
use shift_bnn_bench::{num, print_table};

fn main() {
    let config = DesignKind::ShiftBnn.config();
    let mut rows = Vec::new();
    for component in SpuComponent::all() {
        let usage = component_usage(component, &config);
        rows.push(vec![
            component.name().to_string(),
            usage.lut.to_string(),
            usage.ff.to_string(),
            usage.dsp.to_string(),
            usage.bram.to_string(),
            num(usage.avg_power_w, 3),
        ]);
    }
    let spu = spu_usage(&config);
    rows.push(vec![
        "total (1 SPU)".to_string(),
        spu.lut.to_string(),
        spu.ff.to_string(),
        spu.dsp.to_string(),
        spu.bram.to_string(),
        num(spu.avg_power_w, 3),
    ]);
    let total = accelerator_usage(&config);
    rows.push(vec![
        "total (16 SPUs + ctrl)".to_string(),
        total.lut.to_string(),
        total.ff.to_string(),
        total.dsp.to_string(),
        total.bram.to_string(),
        num(total.avg_power_w, 3),
    ]);
    print_table(
        "Table 2: resource usage of Shift-BNN components (per SPU)",
        &["component", "LUT", "FF", "DSP", "BRAM", "Pavg (W)"],
        &rows,
    );
    println!(
        "paper (per SPU): PE tile 966/469/16/0 @0.076W, shift array 222/464/0/0 @0.016W, function units 785/399/32/0 @0.008W, GRNGs 2277/4224/0/0 @0.005W, NBin/NBout 0/0/0/48 @0.112W"
    );
}
