//! `obs_bench`: drives the traced-replay observability grid — the everything-at-once
//! `crash_storm` fault scenario × the four arrival processes, plus a fault-free two-tier
//! escalation run — on a 4-shard Monte-Carlo cluster. Every grid point runs **twice**,
//! untraced and through a `TraceRecorder`, and the run asserts the tracing contract:
//! responses/events/faults byte-identical either way, recorder-derived serialization equal
//! to the report's own, and exactly 100% of every answered request's end-to-end tick
//! latency attributed to the five named stages. The grid then re-runs at a different
//! per-shard worker count and the summaries must be byte-identical. Emits:
//!
//! * `BENCH_obs.json` — the full record including machine-dependent wall clocks (a CI
//!   artifact, not committed);
//! * `BENCH_obs_summary.json` — the deterministic tick-domain scalars (event counts,
//!   stream/metrics/prometheus digests, the p50/p99 stage-attribution table, per-tier GEMM
//!   and ε profile counters; the committed regression baseline, checked by
//!   `bench_regression` and the golden suite).
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin obs_bench -- [--reduced]
//! [--workers N] [--out PATH] [--summary PATH]`

use std::time::Instant;

use shift_bnn::pool;
use shift_bnn::sweep::json::Json;
use shift_bnn_bench::obs_views::{obs_summary_json, run_obs_grid};
use shift_bnn_bench::{num, print_table};

struct Args {
    reduced: bool,
    workers: usize,
    out: String,
    summary: String,
}

fn parse_args() -> Args {
    // Like chaos_bench: even on a single-CPU machine the parallel pass uses at least two
    // workers per shard so the worker-invariance assertion exercises the pooled scheduler.
    let mut args = Args {
        reduced: false,
        workers: pool::default_workers().max(2),
        out: "BENCH_obs.json".to_string(),
        summary: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reduced" => args.reduced = true,
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v.parse().expect("--workers must be a positive integer");
                assert!(args.workers >= 1, "--workers must be >= 1");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--summary" => args.summary = it.next().expect("--summary needs a path"),
            other => panic!(
                "unknown argument {other} (expected --reduced, --workers N, --out PATH, --summary PATH)"
            ),
        }
    }
    if args.summary.is_empty() {
        // A reduced run's summary differs from the committed full baseline (shorter traces),
        // so it defaults to a sibling path rather than clobbering the committed file.
        args.summary = if args.reduced {
            "BENCH_obs_summary_reduced.json".to_string()
        } else {
            "BENCH_obs_summary.json".to_string()
        };
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "obs grid: 5 configs (crash_storm x 4 arrival processes + two_tier), each run traced \
         AND untraced on 4 shards; 1 worker/shard vs {} workers/shard",
        args.workers
    );

    // Serial pass: timed per grid, kept as the canonical results. Every record already
    // asserts traced-vs-untraced byte identity and exact stage coverage internally.
    let serial_start = Instant::now();
    let grid = run_obs_grid(args.reduced, 1);
    let serial_ns = serial_start.elapsed().as_nanos();
    let summary = obs_summary_json(&grid, args.reduced);

    // Parallel pass: the recorder lives on the orchestration thread, so the recorded
    // stream — and with it every digest in the summary — must not move with worker count.
    let parallel_start = Instant::now();
    let parallel = run_obs_grid(args.reduced, args.workers);
    let parallel_ns = parallel_start.elapsed().as_nanos();
    assert_eq!(
        summary.to_compact(),
        obs_summary_json(&parallel, args.reduced).to_compact(),
        "1-worker and {}-worker obs summaries must be byte-identical",
        args.workers
    );

    let table = |record: &Json, stage: &str, field: &str| -> String {
        record
            .get("stage_attribution")
            .and_then(|t| t.get(stage))
            .and_then(|s| s.get(field))
            .and_then(Json::as_u64)
            .expect("summary records carry the attribution table")
            .to_string()
    };
    let records = match summary.get("records") {
        Some(Json::Array(records)) => records,
        _ => unreachable!("summary has a records array"),
    };
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|record| {
            let s = |key: &str| record.get(key).unwrap().to_compact().trim_matches('"').to_string();
            vec![
                s("scenario"),
                s("arrival"),
                s("answered"),
                s("events_recorded"),
                table(record, "queue", "p99"),
                table(record, "batch_wait", "p99"),
                table(record, "compute", "p99"),
                table(record, "retry_backoff", "p99"),
                table(record, "escalation", "p99"),
                table(record, "end_to_end", "p50"),
                table(record, "end_to_end", "p99"),
            ]
        })
        .collect();
    print_table(
        "Stage attribution (p99 ticks per stage; 100% of answered latency tiled)",
        &[
            "scenario", "arrival", "answered", "events", "queue", "batch", "compute", "retry",
            "escal", "e2e p50", "e2e p99",
        ],
        &rows,
    );

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\nwall clock: grid 1 worker/shard {} ms, {} workers/shard {} ms; summaries byte-identical",
        num(serial_ns as f64 / 1e6, 1),
        args.workers,
        num(parallel_ns as f64 / 1e6, 1),
    );

    // Full artifact: the deterministic summary plus wall clocks and per-grid-point reports.
    let bench = Json::obj([
        ("schema", Json::Str("shift-bnn-bench-obs/v1".into())),
        ("reduced", Json::Bool(args.reduced)),
        (
            "timing",
            Json::obj([
                ("available_parallelism", Json::UInt(cpus as u64)),
                ("workers_serial", Json::UInt(1)),
                ("workers_parallel", Json::UInt(args.workers as u64)),
                ("serial_total_ns", Json::UInt(serial_ns as u64)),
                ("parallel_total_ns", Json::UInt(parallel_ns as u64)),
                ("summaries_byte_identical", Json::Bool(true)),
            ]),
        ),
        ("summary", summary.clone()),
        ("runs", Json::Array(grid.iter().map(|run| run.report.to_json()).collect())),
    ]);
    std::fs::write(&args.out, bench.to_pretty() + "\n").expect("write BENCH_obs.json");
    std::fs::write(&args.summary, summary.to_pretty() + "\n")
        .expect("write BENCH_obs_summary.json");
    println!("wrote {} and {} (5 grid configs)", args.out, args.summary);
}
