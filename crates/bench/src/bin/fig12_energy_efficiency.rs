//! Figure 12: energy efficiency (GOPS/W) of the four designs and the GPU, normalized to MN-Acc.

use bnn_models::ModelKind;
use shift_bnn::compare::{geometric_mean, DesignComparison};
use shift_bnn::designs::DesignKind;
use shift_bnn_bench::{num, print_table, ratio};

fn main() {
    let samples = 16;
    let mut rows = Vec::new();
    let mut shift_vs_rc = Vec::new();
    let mut shift_vs_mn = Vec::new();
    let mut shift_vs_gpu = Vec::new();
    for kind in ModelKind::all() {
        let model = kind.bnn();
        let cmp = DesignComparison::run(&model, samples, &DesignKind::all());
        let eff = cmp.normalized_efficiency(DesignKind::MnAcc);
        let value = |d: DesignKind| eff.iter().find(|(k, _)| *k == d).unwrap().1;
        let gpu = cmp.gpu_normalized_efficiency(&model, DesignKind::MnAcc);
        rows.push(vec![
            kind.paper_name().to_string(),
            num(value(DesignKind::MnAcc), 2),
            num(value(DesignKind::MnShiftAcc), 2),
            num(value(DesignKind::RcAcc), 2),
            num(value(DesignKind::ShiftBnn), 2),
            num(gpu, 2),
        ]);
        shift_vs_rc.push(value(DesignKind::ShiftBnn) / value(DesignKind::RcAcc));
        shift_vs_mn.push(value(DesignKind::ShiftBnn) / value(DesignKind::MnAcc));
        shift_vs_gpu.push(value(DesignKind::ShiftBnn) / gpu);
    }
    print_table(
        "Figure 12: normalized energy efficiency (GOPS/W, S=16, MN-Acc = 1.0)",
        &["model", "MN-Acc", "MNShift-Acc", "RC-Acc", "Shift-BNN", "GPU (P100)"],
        &rows,
    );
    println!(
        "Shift-BNN vs RC-Acc: avg {} (paper: 4.9x avg, up to 10.8x)",
        ratio(geometric_mean(&shift_vs_rc))
    );
    println!(
        "Shift-BNN vs MN-Acc: avg {} (paper: 10.3x avg, up to 26.1x)",
        ratio(geometric_mean(&shift_vs_mn))
    );
    println!("Shift-BNN vs GPU: avg {} (paper: 4.7x avg)", ratio(geometric_mean(&shift_vs_gpu)));
}
