//! Figure 12: energy efficiency (GOPS/W) of the four designs and the GPU, normalized to MN-Acc.
//! A thin view over the shared design-space sweep (the GPU roofline point is evaluated on top).

use shift_bnn::sweep::paper_sweep;
use shift_bnn_bench::views::fig12;
use shift_bnn_bench::{num, print_table, ratio};

fn main() {
    let view = fig12(&paper_sweep());
    let rows: Vec<Vec<String>> = view
        .rows
        .iter()
        .map(|r| {
            vec![
                r.designs.model.clone(),
                num(r.designs.mn, 2),
                num(r.designs.mnshift, 2),
                num(r.designs.rc, 2),
                num(r.designs.shift, 2),
                num(r.gpu, 2),
            ]
        })
        .collect();
    print_table(
        "Figure 12: normalized energy efficiency (GOPS/W, S=16, MN-Acc = 1.0)",
        &["model", "MN-Acc", "MNShift-Acc", "RC-Acc", "Shift-BNN", "GPU (P100)"],
        &rows,
    );
    println!("Shift-BNN vs RC-Acc: avg {} (paper: 4.9x avg, up to 10.8x)", ratio(view.shift_vs_rc));
    println!(
        "Shift-BNN vs MN-Acc: avg {} (paper: 10.3x avg, up to 26.1x)",
        ratio(view.shift_vs_mn)
    );
    println!("Shift-BNN vs GPU: avg {} (paper: 4.7x avg)", ratio(view.shift_vs_gpu));
}
