//! Figure 3: breakdown of total off-chip data transfer by operand class (weights (μ,σ),
//! Gaussian random variables ε, input/output feature maps) on the baseline accelerator.

use bnn_arch::EnergyModel;
use bnn_models::ModelKind;
use shift_bnn::designs::DesignKind;
use shift_bnn::evaluate::evaluate_with;
use shift_bnn_bench::{percent, print_table};

fn main() {
    let energy = EnergyModel::default();
    let samples = 16;
    let mut rows = Vec::new();
    let mut epsilon_fractions = Vec::new();
    for kind in ModelKind::all() {
        let report = evaluate_with(DesignKind::MnAcc, &kind.bnn(), samples, &energy).report;
        let (w, e, f) = report.dram_traffic.fractions();
        epsilon_fractions.push(e);
        rows.push(vec![kind.paper_name().to_string(), percent(w), percent(e), percent(f)]);
    }
    print_table(
        "Figure 3: off-chip data transfer breakdown (MN-Acc, S=16)",
        &["model", "weights (mu,sigma)", "epsilon", "input/output"],
        &rows,
    );
    let avg = epsilon_fractions.iter().sum::<f64>() / epsilon_fractions.len() as f64;
    println!("average epsilon share: {} (paper: ~71% on average)", percent(avg));
}
