//! Figure 3: breakdown of total off-chip data transfer by operand class (weights (μ,σ),
//! Gaussian random variables ε, input/output feature maps) on the baseline accelerator.
//! A thin view over the shared design-space sweep.

use shift_bnn::sweep::paper_sweep;
use shift_bnn_bench::views::fig03;
use shift_bnn_bench::{percent, print_table};

fn main() {
    let view = fig03(&paper_sweep());
    let rows: Vec<Vec<String>> = view
        .rows
        .iter()
        .map(|(model, w, e, f)| vec![model.clone(), percent(*w), percent(*e), percent(*f)])
        .collect();
    print_table(
        "Figure 3: off-chip data transfer breakdown (MN-Acc, S=16)",
        &["model", "weights (mu,sigma)", "epsilon", "input/output"],
        &rows,
    );
    println!("average epsilon share: {} (paper: ~71% on average)", percent(view.average_epsilon));
}
