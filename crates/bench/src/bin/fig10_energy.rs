//! Figure 10: training energy of the four accelerator designs, normalized to MN-Acc.

use bnn_models::ModelKind;
use shift_bnn::compare::{geometric_mean, DesignComparison};
use shift_bnn::designs::DesignKind;
use shift_bnn_bench::{num, percent, print_table};

fn main() {
    let samples = 16;
    let mut rows = Vec::new();
    let mut shift_vs_rc = Vec::new();
    let mut shift_vs_mn = Vec::new();
    let mut shift_vs_mnshift = Vec::new();
    for kind in ModelKind::all() {
        let cmp = DesignComparison::run(&kind.bnn(), samples, &DesignKind::all());
        let normalized = cmp.normalized_energy(DesignKind::MnAcc);
        let value = |d: DesignKind| normalized.iter().find(|(k, _)| *k == d).unwrap().1;
        rows.push(vec![
            kind.paper_name().to_string(),
            num(value(DesignKind::MnAcc), 3),
            num(value(DesignKind::MnShiftAcc), 3),
            num(value(DesignKind::RcAcc), 3),
            num(value(DesignKind::ShiftBnn), 3),
        ]);
        shift_vs_rc.push(value(DesignKind::ShiftBnn) / value(DesignKind::RcAcc));
        shift_vs_mn.push(value(DesignKind::ShiftBnn) / value(DesignKind::MnAcc));
        shift_vs_mnshift.push(value(DesignKind::ShiftBnn) / value(DesignKind::MnShiftAcc));
    }
    print_table(
        "Figure 10: normalized energy consumption (S=16, MN-Acc = 1.0)",
        &["model", "MN-Acc", "MNShift-Acc", "RC-Acc", "Shift-BNN"],
        &rows,
    );
    println!(
        "Shift-BNN energy reduction vs RC-Acc: avg {} (paper: 62% avg, up to 76%)",
        percent(1.0 - geometric_mean(&shift_vs_rc))
    );
    println!(
        "Shift-BNN energy reduction vs MN-Acc: avg {} (paper: 70% avg, up to 82%)",
        percent(1.0 - geometric_mean(&shift_vs_mn))
    );
    println!(
        "Shift-BNN energy reduction vs MNShift-Acc: avg {} (paper: 39% avg, up to 44%)",
        percent(1.0 - geometric_mean(&shift_vs_mnshift))
    );
}
