//! Figure 10: training energy of the four accelerator designs, normalized to MN-Acc.
//! A thin view over the shared design-space sweep.

use shift_bnn::sweep::paper_sweep;
use shift_bnn_bench::views::fig10;
use shift_bnn_bench::{num, percent, print_table};

fn main() {
    let view = fig10(&paper_sweep());
    let rows: Vec<Vec<String>> = view
        .rows
        .iter()
        .map(|r| {
            vec![r.model.clone(), num(r.mn, 3), num(r.mnshift, 3), num(r.rc, 3), num(r.shift, 3)]
        })
        .collect();
    print_table(
        "Figure 10: normalized energy consumption (S=16, MN-Acc = 1.0)",
        &["model", "MN-Acc", "MNShift-Acc", "RC-Acc", "Shift-BNN"],
        &rows,
    );
    println!(
        "Shift-BNN energy reduction vs RC-Acc: avg {} (paper: 62% avg, up to 76%)",
        percent(view.reduction_vs_rc)
    );
    println!(
        "Shift-BNN energy reduction vs MN-Acc: avg {} (paper: 70% avg, up to 82%)",
        percent(view.reduction_vs_mn)
    );
    println!(
        "Shift-BNN energy reduction vs MNShift-Acc: avg {} (paper: 39% avg, up to 44%)",
        percent(view.reduction_vs_mnshift)
    );
}
