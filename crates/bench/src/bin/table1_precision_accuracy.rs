//! Table 1: validation accuracy of Shift-BNN training under 8-, 16- and 32-bit arithmetic.
//!
//! The paper trains the five full-size models on MNIST/CIFAR-10/ImageNet; here each family is
//! represented by a scaled-down Bayesian network of the same architectural style trained on a
//! deterministic synthetic dataset of matching input shape (see DESIGN.md for the substitution
//! rationale). The reproduced trend is the paper's: 16-bit tracks 32-bit closely while 8-bit
//! training degrades badly (the paper reports divergence/NaN on the larger models).

use bnn_tensor::Precision;
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn_bench::{percent, print_table};

struct Family {
    name: &'static str,
    dataset_name: &'static str,
    conv: bool,
    input: Vec<usize>,
    classes: usize,
    epochs: usize,
}

fn families() -> Vec<Family> {
    vec![
        Family {
            name: "B-MLP",
            dataset_name: "MNIST (synthetic)",
            conv: false,
            input: vec![64],
            classes: 4,
            epochs: 14,
        },
        Family {
            name: "B-LeNet",
            dataset_name: "CIFAR-10 (synthetic)",
            conv: true,
            input: vec![3, 12, 12],
            classes: 3,
            epochs: 12,
        },
        Family {
            name: "B-AlexNet (reduced)",
            dataset_name: "ImageNet (synthetic)",
            conv: true,
            input: vec![3, 12, 12],
            classes: 3,
            epochs: 12,
        },
        Family {
            name: "B-VGG (reduced)",
            dataset_name: "ImageNet (synthetic)",
            conv: true,
            input: vec![3, 12, 12],
            classes: 3,
            epochs: 12,
        },
        Family {
            name: "B-ResNet (reduced)",
            dataset_name: "ImageNet (synthetic)",
            conv: true,
            input: vec![3, 12, 12],
            classes: 3,
            epochs: 12,
        },
    ]
}

fn train_accuracy(family: &Family, precision: Precision, seed: u64) -> Option<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config =
        BayesConfig { kl_weight: 5e-4, ..BayesConfig::default() }.with_precision(precision);
    let network = if family.conv {
        let shape = [family.input[0], family.input[1], family.input[2]];
        Network::bayes_lenet(&shape, family.classes, config, &mut rng)
    } else {
        Network::bayes_mlp(family.input[0], &[48, 32], family.classes, config, &mut rng)
    };
    let dataset = SyntheticDataset::generate(&family.input, family.classes, 20, 1.1, seed ^ 0xD00D);
    let (train, val) = dataset.split(0.8);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig {
            samples: 2,
            learning_rate: 0.06,
            strategy: EpsilonStrategy::LfsrRetrieve,
            seed,
        },
    )
    .ok()?;
    let mut diverged = false;
    for _ in 0..family.epochs {
        match trainer.train_epoch(&train) {
            Ok(metrics) if metrics.mean_loss.is_finite() => {}
            _ => {
                diverged = true;
                break;
            }
        }
    }
    if diverged {
        return None;
    }
    trainer.evaluate(&val).ok().filter(|a| a.is_finite())
}

fn main() {
    let precisions = [
        ("8-bit", Precision::PAPER_8BIT),
        ("16-bit", Precision::PAPER_16BIT),
        ("32-bit", Precision::Fp32),
    ];
    let mut rows = Vec::new();
    for (idx, family) in families().iter().enumerate() {
        let mut row = vec![family.name.to_string(), family.dataset_name.to_string()];
        for (_, precision) in &precisions {
            let acc = train_accuracy(family, *precision, 100 + idx as u64);
            row.push(match acc {
                Some(a) => percent(a),
                None => "NaN".to_string(),
            });
        }
        rows.push(row);
    }
    print_table(
        "Table 1: validation accuracy vs training data type (Shift-BNN training path)",
        &["network", "dataset", "val-acc (8b)", "val-acc (16b)", "val-acc (32b)"],
        &rows,
    );
    println!(
        "paper: 16-bit costs only ~0.31% accuracy vs 32-bit on average; 8-bit fails to converge on the large ImageNet models"
    );
}
