//! Table 1: validation accuracy of Shift-BNN training under 8-, 16- and 32-bit arithmetic.
//!
//! The paper trains the five full-size models on MNIST/CIFAR-10/ImageNet; here each family is
//! represented by a scaled-down Bayesian network of the same architectural style trained on a
//! deterministic synthetic dataset of matching input shape (see DESIGN.md for the substitution
//! rationale). The reproduced trend is the paper's: 16-bit tracks 32-bit closely while 8-bit
//! training degrades badly (the paper reports divergence/NaN on the larger models).
//!
//! The 15 independent (family × precision) training cells run in parallel on the sweep
//! engine's work-stealing pool; see [`shift_bnn_bench::views::table1`].

use shift_bnn_bench::views::table1;
use shift_bnn_bench::{percent, print_table};

fn main() {
    let view = table1();
    let rows: Vec<Vec<String>> = view
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![r.network.clone(), r.dataset.clone()];
            for acc in &r.accuracies {
                row.push(match acc {
                    Some(a) => percent(*a),
                    None => "NaN".to_string(),
                });
            }
            row
        })
        .collect();
    print_table(
        "Table 1: validation accuracy vs training data type (Shift-BNN training path)",
        &["network", "dataset", "val-acc (8b)", "val-acc (16b)", "val-acc (32b)"],
        &rows,
    );
    println!(
        "paper: 16-bit costs only ~0.31% accuracy vs 32-bit on average; 8-bit fails to converge on the large ImageNet models"
    );
}
