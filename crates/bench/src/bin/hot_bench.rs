//! `hot_bench`: the end-to-end gauge of the numeric hot-path rewrite.
//!
//! Measures, in one run:
//!
//! 1. the packed im2col+GEMM convolution kernels against the retained reference loop nests
//!    (per geometry × direction, asserting bit-identical outputs as it goes);
//! 2. word-parallel ε generation against the bit-serial LFSR walk;
//! 3. a traced engine run against the identical untraced run (responses asserted
//!    byte-identical) — the `obs_overhead` ratio gated by `bench_regression`;
//! 4. the steady-state allocation counts of a full training iteration, a served request and
//!    a *traced* served request (serving plus recorder writes), measured **at the
//!    allocator** via the binary's counting `#[global_allocator]` — all must be zero after
//!    warmup, and the run fails otherwise.
//!
//! Outputs: a human table on stdout, the full timing report to `--out` (machine-dependent,
//! a CI artifact), and the deterministic summary (digests + allocation counts, no timings)
//! to `--summary` — the file committed as `BENCH_hot_summary.json` and drift-gated by
//! `bench_regression` on every PR and nightly.
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin hot_bench -- \
//!   [--reps N] [--out BENCH_hot.json] [--summary BENCH_hot_summary.json] [--min-speedup X]`

use bnn_tensor::KernelTier;
use shift_bnn_bench::alloc::CountingAlloc;
use shift_bnn_bench::hot::{
    full_json, geometric_mean, run_epsilon_bench, run_fused_serve_bench, run_kernel_benches,
    run_obs_overhead_bench, run_tier_benches, summary_json, EpsilonBench, KernelBench, ServeProbe,
    TierBench, TracedServeProbe, TrainingProbe,
};
use shift_bnn_bench::print_table;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

struct Args {
    reps: usize,
    out: Option<String>,
    summary: Option<String>,
    min_speedup: f64,
}

fn parse_args() -> Args {
    let mut args = Args { reps: 60, out: None, summary: None, min_speedup: 0.0 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                args.reps = it
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps must be an integer")
            }
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            "--summary" => args.summary = Some(it.next().expect("--summary needs a path")),
            "--min-speedup" => {
                args.min_speedup = it
                    .next()
                    .expect("--min-speedup needs a value")
                    .parse()
                    .expect("--min-speedup must be a float")
            }
            other => panic!(
                "unknown argument {other} (expected --reps N, --out PATH, --summary PATH, \
                 --min-speedup X)"
            ),
        }
    }
    args
}

/// Measures total steady-state allocations across `measured` iterations of `work` after
/// `warmup` warmup calls — the raw count, so even a single allocation anywhere in the
/// window fails the zero-allocation gate (no per-iteration averaging to round it away).
fn steady_allocs(warmup: usize, measured: usize, mut work: impl FnMut()) -> u64 {
    for _ in 0..warmup {
        work();
    }
    let before = ALLOC.allocations();
    for _ in 0..measured {
        work();
    }
    ALLOC.allocations() - before
}

fn main() {
    let args = parse_args();

    let kernels = run_kernel_benches(args.reps);
    let tiers = run_tier_benches(args.reps);
    let fused = run_fused_serve_bench(args.reps, 16);
    let obs = run_obs_overhead_bench(args.reps, 48);
    let epsilon = run_epsilon_bench(args.reps, 16 * 1024);

    // Allocation probes: warm two iterations (arena growth, Vec capacity), then measure.
    let mut training = TrainingProbe::new();
    let train_allocs = steady_allocs(2, 4, || training.run(1));
    let mut serving = ServeProbe::new();
    let serve_allocs = steady_allocs(2, 4, || serving.run(1));
    let mut traced = TracedServeProbe::new();
    let traced_allocs = steady_allocs(2, 4, || traced.run(4));

    let rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|k: &KernelBench| {
            vec![
                k.name.to_string(),
                k.op.to_string(),
                format!("{:.1}", k.reference_ns / 1e3),
                format!("{:.1}", k.packed_ns / 1e3),
                format!("{:.2}x", k.speedup()),
            ]
        })
        .collect();
    print_table(
        "Hot-path kernels: retained reference loops vs im2col+blocked GEMM (bit-identical)",
        &["geometry", "op", "reference µs", "packed µs", "speedup"],
        &rows,
    );

    let speedups: Vec<f64> = kernels.iter().map(KernelBench::speedup).collect();
    let geomean = geometric_mean(&speedups);
    println!("\ngeometric-mean conv kernel speedup: {geomean:.2}x");

    let tier_rows: Vec<Vec<String>> = tiers
        .iter()
        .map(|t: &TierBench| {
            let mut row = vec![t.name.to_string()];
            row.extend(KernelTier::ALL.iter().map(|&tier| format!("{:.1}", t.ns(tier) / 1e3)));
            row.push(format!("{:.2}x", t.simd_speedup()));
            row
        })
        .collect();
    print_table(
        "GEMM kernel tiers (bit-exact tiers asserted identical; fastmath ULP-bounded)",
        &["shape", "reference µs", "blocked µs", "simd µs", "fastmath µs", "simd/blocked"],
        &tier_rows,
    );
    let simd_gemm =
        geometric_mean(&tiers.iter().map(TierBench::simd_speedup).collect::<Vec<f64>>());
    println!("\ngeometric-mean SIMD-over-blocked GEMM speedup: {simd_gemm:.2}x");
    println!(
        "fused sampling (S = {}): per-sample {:.1} µs, fused {:.1} µs ({:.2}x), \
         response digest {}",
        fused.samples,
        fused.per_sample_ns / 1e3,
        fused.fused_ns / 1e3,
        fused.speedup(),
        fused.digest
    );

    let e: &EpsilonBench = &epsilon;
    println!(
        "ε generation ({} values): bit-serial {:.1} µs, word-parallel {:.1} µs ({:.2}x), \
         stream digest {}",
        e.count,
        e.serial_ns / 1e3,
        e.word_parallel_ns / 1e3,
        e.speedup(),
        e.digest
    );
    println!(
        "traced serving ({} requests, {} events): untraced {:.1} µs, traced {:.1} µs \
         ({:.3}x, responses byte-identical)",
        obs.requests,
        obs.events,
        obs.untraced_ns / 1e3,
        obs.traced_ns / 1e3,
        obs.overhead(),
    );
    println!(
        "steady-state allocations: {train_allocs} per training iteration, \
         {serve_allocs} per served request, {traced_allocs} per traced request"
    );

    assert_eq!(train_allocs, 0, "steady-state training iteration must not allocate");
    assert_eq!(serve_allocs, 0, "steady-state served request must not allocate");
    assert_eq!(traced_allocs, 0, "steady-state traced request must not allocate");
    if args.min_speedup > 0.0 {
        assert!(
            geomean >= args.min_speedup,
            "geometric-mean speedup {geomean:.2}x below required {:.2}x",
            args.min_speedup
        );
    }

    if let Some(path) = &args.out {
        let doc = full_json(
            &kernels,
            &tiers,
            &fused,
            &obs,
            &epsilon,
            train_allocs,
            serve_allocs,
            traced_allocs,
        );
        std::fs::write(path, doc.to_pretty() + "\n").expect("write full report");
        println!("wrote {path}");
    }
    if let Some(path) = &args.summary {
        let doc = summary_json(&kernels, &epsilon, train_allocs, serve_allocs, traced_allocs);
        std::fs::write(path, doc.to_pretty() + "\n").expect("write summary");
        println!("wrote {path}");
    }
}
