//! `store_bench`: the end-to-end gauge of the checkpoint store and model registry.
//!
//! Per model family (B-MLP and B-LeNet proxies), in one run:
//!
//! 1. trains a v1 posterior, resume-trains a v2 from v1's checkpoint (exercising the
//!    bit-exact resume path), and round-trips both through the binary format;
//! 2. measures save/load throughput: encode, fully-validated decode, atomic registry
//!    publish, registry load (wall clock — artifact only, never committed);
//! 3. serves the registry-loaded v1 against the in-memory posterior (asserting byte-identical
//!    responses at 1 and N workers) and hot-swaps to v2 mid-trace, measuring the swap's
//!    activation latency in **ticks** (deterministic — committed).
//!
//! Outputs: a human table on stdout, the full timing report to `--out` (machine-dependent, a
//! CI artifact), and the deterministic summary (sizes, digests, versions, tick boundaries) to
//! `--summary` — the file committed as `BENCH_store_summary.json` and drift-gated by
//! `bench_regression` on every PR and nightly.
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin store_bench -- \
//!   [--reps N] [--registry PATH] [--out BENCH_store.json] [--summary BENCH_store_summary.json]`

use shift_bnn_bench::store_views::{full_json, run_store_bench, summary_json};
use shift_bnn_bench::{num, print_table};

struct Args {
    reps: usize,
    registry: String,
    out: Option<String>,
    summary: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        reps: 20,
        registry: "target/tmp/store_bench-registry".to_string(),
        out: None,
        summary: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                args.reps = it
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps must be an integer")
            }
            "--registry" => args.registry = it.next().expect("--registry needs a path"),
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            "--summary" => args.summary = Some(it.next().expect("--summary needs a path")),
            other => panic!(
                "unknown argument {other} (expected --reps N, --registry PATH, --out PATH, \
                 --summary PATH)"
            ),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let results = run_store_bench(std::path::Path::new(&args.registry), args.reps);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}", r.v1_bytes),
                num(r.encode_mb_per_s(), 1),
                num(r.decode_mb_per_s(), 1),
                format!("{:.1}", r.publish_ns / 1e3),
                format!("{:.1}", r.load_ns / 1e3),
                format!("{}", r.swap_latency_ticks()),
                r.v1_digest.clone(),
            ]
        })
        .collect();
    print_table(
        "Checkpoint store: save/load throughput and hot-swap latency (digests pinned)",
        &[
            "model",
            "bytes",
            "enc MB/s",
            "dec MB/s",
            "publish µs",
            "load µs",
            "swap ticks",
            "digest",
        ],
        &rows,
    );
    println!(
        "\nhot-swap: requested at tick {}, activated at the first batch starting at or after \
         it; every disk-loaded replica asserted byte-identical to its in-memory posterior",
        shift_bnn_bench::store_views::STORE_SWAP_TICK
    );

    if let Some(path) = &args.out {
        std::fs::write(path, full_json(&results).to_pretty() + "\n").expect("write full report");
        println!("wrote {path}");
    }
    if let Some(path) = &args.summary {
        std::fs::write(path, summary_json(&results).to_pretty() + "\n").expect("write summary");
        println!("wrote {path}");
    }
}
