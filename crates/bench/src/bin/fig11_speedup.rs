//! Figure 11: speedup of the four accelerator designs over the MN-Acc baseline.

use bnn_models::ModelKind;
use shift_bnn::compare::{geometric_mean, DesignComparison};
use shift_bnn::designs::DesignKind;
use shift_bnn_bench::{print_table, ratio};

fn main() {
    let samples = 16;
    let mut rows = Vec::new();
    let mut shift_over_rc = Vec::new();
    for kind in ModelKind::all() {
        let cmp = DesignComparison::run(&kind.bnn(), samples, &DesignKind::all());
        let speedups = cmp.speedup_over(DesignKind::MnAcc);
        let value = |d: DesignKind| speedups.iter().find(|(k, _)| *k == d).unwrap().1;
        rows.push(vec![
            kind.paper_name().to_string(),
            ratio(value(DesignKind::MnAcc)),
            ratio(value(DesignKind::MnShiftAcc)),
            ratio(value(DesignKind::RcAcc)),
            ratio(value(DesignKind::ShiftBnn)),
        ]);
        shift_over_rc.push(value(DesignKind::ShiftBnn) / value(DesignKind::RcAcc));
    }
    print_table(
        "Figure 11: speedup over MN-Acc (S=16)",
        &["model", "MN-Acc", "MNShift-Acc", "RC-Acc", "Shift-BNN"],
        &rows,
    );
    println!(
        "Shift-BNN speedup over RC-Acc: avg {} (paper: 1.6x avg, up to 2.8x; FC-dominated models gain the most)",
        ratio(geometric_mean(&shift_over_rc))
    );
}
