//! Figure 11: speedup of the four accelerator designs over the MN-Acc baseline.
//! A thin view over the shared design-space sweep.

use shift_bnn::sweep::paper_sweep;
use shift_bnn_bench::views::fig11;
use shift_bnn_bench::{print_table, ratio};

fn main() {
    let view = fig11(&paper_sweep());
    let rows: Vec<Vec<String>> = view
        .rows
        .iter()
        .map(|r| vec![r.model.clone(), ratio(r.mn), ratio(r.mnshift), ratio(r.rc), ratio(r.shift)])
        .collect();
    print_table(
        "Figure 11: speedup over MN-Acc (S=16)",
        &["model", "MN-Acc", "MNShift-Acc", "RC-Acc", "Shift-BNN"],
        &rows,
    );
    println!(
        "Shift-BNN speedup over RC-Acc: avg {} (paper: 1.6x avg, up to 2.8x; FC-dominated models gain the most)",
        ratio(view.shift_over_rc)
    );
}
