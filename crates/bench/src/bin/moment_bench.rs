//! `moment_bench`: serves the same dense open-loop trace under S = 16 Monte-Carlo and under
//! the single-pass analytic moment backend for every zoo family, each config once on a
//! single worker and once on the work-stealing pool, asserts the two runs' responses are
//! **byte-identical**, and emits:
//!
//! * `BENCH_moment.json` — the full record, including machine-dependent wall clocks (a CI
//!   artifact, not committed);
//! * `BENCH_moment_summary.json` — the deterministic tick-domain scalars, response digests,
//!   per-family moment-vs-MC speedups and accuracy deviations (the committed regression
//!   baseline, checked by `bench_regression` and the golden suite).
//!
//! Usage: `cargo run --release -p shift-bnn-bench --bin moment_bench -- [--reduced]
//! [--workers N] [--out PATH] [--summary PATH]`

use std::time::Instant;

use bnn_serve::ServeMode;
use shift_bnn::pool;
use shift_bnn::sweep::json::Json;
use shift_bnn_bench::moment_views::{
    entropy_deviation_vs_mc, mean_deviation_vs_mc, moment_configs, moment_request_count,
    moment_summary_json, run_moment_grid, speedup_vs_mc16,
};
use shift_bnn_bench::{num, print_table, ratio};

struct Args {
    reduced: bool,
    workers: usize,
    out: String,
    summary: String,
}

fn parse_args() -> Args {
    // Like serve_bench: even on a single-CPU machine the parallel run uses at least two
    // workers so the byte-identity assertion always exercises the multi-threaded scheduler.
    let mut args = Args {
        reduced: false,
        workers: pool::default_workers().max(2),
        out: "BENCH_moment.json".to_string(),
        summary: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reduced" => args.reduced = true,
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v.parse().expect("--workers must be a positive integer");
                assert!(args.workers >= 1, "--workers must be >= 1");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--summary" => args.summary = it.next().expect("--summary needs a path"),
            other => panic!(
                "unknown argument {other} (expected --reduced, --workers N, --out PATH, --summary PATH)"
            ),
        }
    }
    if args.summary.is_empty() {
        // A reduced run's summary differs from the committed full baseline (shorter traces),
        // so it defaults to a sibling path rather than clobbering the committed file.
        args.summary = if args.reduced {
            "BENCH_moment_summary_reduced.json".to_string()
        } else {
            "BENCH_moment_summary.json".to_string()
        };
    }
    args
}

fn main() {
    let args = parse_args();
    let requests = moment_request_count(args.reduced);
    let configs = moment_configs();
    println!(
        "moment grid: {} configs (5 models x {{mc16, moment}}), {} requests each, \
         1 worker vs {} workers",
        configs.len(),
        requests,
        args.workers
    );

    // Serial pass: timed per config, reports kept as the canonical results.
    let serial_start = Instant::now();
    let results = run_moment_grid(args.reduced, 1);
    let serial_ns = serial_start.elapsed().as_nanos();

    // Parallel pass: timed, then every config's responses must match the serial pass byte
    // for byte — the engine-level determinism contract of both backends.
    let parallel_start = Instant::now();
    let parallel = run_moment_grid(args.reduced, args.workers);
    let parallel_ns = parallel_start.elapsed().as_nanos();
    for ((config, serial_report), (_, parallel_report)) in results.iter().zip(&parallel) {
        assert_eq!(
            serial_report.responses_json(),
            parallel_report.responses_json(),
            "{} {}: 1-worker and {}-worker responses must be byte-identical",
            config.kind.paper_name(),
            config.mode.label(),
            args.workers
        );
    }
    let wall_speedup = serial_ns as f64 / parallel_ns as f64;

    let rows: Vec<Vec<String>> = results
        .iter()
        .enumerate()
        .map(|(i, (config, report))| {
            let (mean_dev, entropy_dev) = match config.mode {
                ServeMode::MonteCarlo => ("-".to_string(), "-".to_string()),
                ServeMode::Moment => {
                    let (_, mc) = &results[i - 1];
                    (
                        num(mean_deviation_vs_mc(mc, report), 4),
                        num(entropy_deviation_vs_mc(mc, report), 4),
                    )
                }
            };
            vec![
                report.model.clone(),
                config.mode.label().to_string(),
                report.batches.len().to_string(),
                report.makespan_ticks.to_string(),
                report.latency_percentile(0.50).to_string(),
                report.latency_percentile(0.99).to_string(),
                num(report.throughput_per_kilotick(), 2),
                ratio(speedup_vs_mc16(&results, i)),
                mean_dev,
                entropy_dev,
            ]
        })
        .collect();
    print_table(
        "Analytic moment serving vs S=16 Monte-Carlo (simulated ticks; accuracy vs MC trace)",
        &[
            "model",
            "mode",
            "batches",
            "makespan",
            "p50",
            "p99",
            "req/ktick",
            "speedup",
            "mean dev",
            "entropy dev",
        ],
        &rows,
    );

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\nwall clock: 1 worker {} ms, {} workers {} ms ({}); responses byte-identical",
        num(serial_ns as f64 / 1e6, 1),
        args.workers,
        num(parallel_ns as f64 / 1e6, 1),
        ratio(wall_speedup)
    );
    if args.workers > 1 && wall_speedup <= 1.0 && cpus == 1 {
        println!(
            "note: this machine exposes a single CPU; worker threads cannot run concurrently, \
             so no wall-clock speedup is expected here"
        );
    }

    // Full artifact: summary records plus wall clocks and per-config full reports.
    let summary = moment_summary_json(&results, args.reduced);
    let bench = Json::obj([
        ("schema", Json::Str("shift-bnn-bench-moment/v1".into())),
        ("reduced", Json::Bool(args.reduced)),
        (
            "timing",
            Json::obj([
                ("available_parallelism", Json::UInt(cpus as u64)),
                ("workers_serial", Json::UInt(1)),
                ("workers_parallel", Json::UInt(args.workers as u64)),
                ("serial_total_ns", Json::UInt(serial_ns as u64)),
                ("parallel_total_ns", Json::UInt(parallel_ns as u64)),
                ("wall_speedup", Json::Float(wall_speedup)),
                ("responses_byte_identical", Json::Bool(true)),
            ]),
        ),
        ("summary", summary.clone()),
        ("runs", Json::Array(results.iter().map(|(_, report)| report.to_json()).collect())),
    ]);
    std::fs::write(&args.out, bench.to_pretty() + "\n").expect("write BENCH_moment.json");
    std::fs::write(&args.summary, summary.to_pretty() + "\n")
        .expect("write BENCH_moment_summary.json");
    println!("wrote {} and {} ({} configs)", args.out, args.summary, results.len());
}
