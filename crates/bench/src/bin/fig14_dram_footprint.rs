//! Figure 14: number of DRAM accesses (with per-operand breakdown) and memory footprint of the
//! four designs at S = 16, normalized to MN-Acc.

use bnn_models::ModelKind;
use shift_bnn::compare::DesignComparison;
use shift_bnn::designs::DesignKind;
use shift_bnn_bench::{num, percent, print_table};

fn main() {
    let samples = 16;
    let mut access_rows = Vec::new();
    let mut footprint_rows = Vec::new();
    let mut footprint_savings = Vec::new();
    for kind in ModelKind::all() {
        let cmp = DesignComparison::run(&kind.bnn(), samples, &DesignKind::all());
        let accesses = cmp.normalized_dram_accesses(DesignKind::MnAcc);
        let footprints = cmp.normalized_footprint(DesignKind::MnAcc);
        let access = |d: DesignKind| accesses.iter().find(|(k, _)| *k == d).unwrap().1;
        let footprint = |d: DesignKind| footprints.iter().find(|(k, _)| *k == d).unwrap().1;
        let baseline_report = &cmp.of(DesignKind::MnAcc).report;
        let (w, e, f) = baseline_report.dram_traffic.fractions();
        access_rows.push(vec![
            format!("{}-16", kind.paper_name()),
            num(access(DesignKind::MnAcc), 2),
            num(access(DesignKind::RcAcc), 2),
            num(access(DesignKind::MnShiftAcc), 2),
            num(access(DesignKind::ShiftBnn), 2),
            format!("w {} / eps {} / io {}", percent(w), percent(e), percent(f)),
        ]);
        footprint_rows.push(vec![
            format!("{}-16", kind.paper_name()),
            num(footprint(DesignKind::MnAcc), 2),
            num(footprint(DesignKind::RcAcc), 2),
            num(footprint(DesignKind::MnShiftAcc), 2),
            num(footprint(DesignKind::ShiftBnn), 2),
        ]);
        footprint_savings.push(1.0 - footprint(DesignKind::ShiftBnn));
    }
    print_table(
        "Figure 14 (top): DRAM accesses normalized to MN-Acc (S=16), with the baseline's operand breakdown",
        &["model", "MN", "RC", "MNShift", "Shift-BNN", "MN-Acc operand breakdown"],
        &access_rows,
    );
    print_table(
        "Figure 14 (bottom): memory footprint normalized to MN-Acc (S=16)",
        &["model", "MN", "RC", "MNShift", "Shift-BNN"],
        &footprint_rows,
    );
    let avg = footprint_savings.iter().sum::<f64>() / footprint_savings.len() as f64;
    println!(
        "average footprint reduction with LFSR reversion: {} (paper: 76.1%; the ε footprint is eliminated entirely)",
        percent(avg)
    );
}
