//! Figure 14: number of DRAM accesses (with per-operand breakdown) and memory footprint of the
//! four designs at S = 16, normalized to MN-Acc. A thin view over the shared design-space sweep.

use shift_bnn::sweep::paper_sweep;
use shift_bnn_bench::views::fig14;
use shift_bnn_bench::{num, percent, print_table};

fn main() {
    let view = fig14(&paper_sweep());
    let access_rows: Vec<Vec<String>> = view
        .access_rows
        .iter()
        .map(|r| {
            let (w, e, f) = r.baseline_fractions;
            vec![
                r.designs.model.clone(),
                num(r.designs.mn, 2),
                num(r.designs.rc, 2),
                num(r.designs.mnshift, 2),
                num(r.designs.shift, 2),
                format!("w {} / eps {} / io {}", percent(w), percent(e), percent(f)),
            ]
        })
        .collect();
    let footprint_rows: Vec<Vec<String>> = view
        .footprint_rows
        .iter()
        .map(|r| {
            vec![r.model.clone(), num(r.mn, 2), num(r.rc, 2), num(r.mnshift, 2), num(r.shift, 2)]
        })
        .collect();
    print_table(
        "Figure 14 (top): DRAM accesses normalized to MN-Acc (S=16), with the baseline's operand breakdown",
        &["model", "MN", "RC", "MNShift", "Shift-BNN", "MN-Acc operand breakdown"],
        &access_rows,
    );
    print_table(
        "Figure 14 (bottom): memory footprint normalized to MN-Acc (S=16)",
        &["model", "MN", "RC", "MNShift", "Shift-BNN"],
        &footprint_rows,
    );
    println!(
        "average footprint reduction with LFSR reversion: {} (paper: 76.1%; the ε footprint is eliminated entirely)",
        percent(view.average_footprint_reduction)
    );
}
