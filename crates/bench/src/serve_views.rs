//! The `serve_bench` configuration grid and its deterministic summary.
//!
//! Mirrors the relationship between `sweep_all` and `sweep::summary`: the binary drives the
//! grid and measures wall clocks; this module owns what the grid *is* and which scalars are
//! deterministic enough to commit (`BENCH_serve_summary.json`) and regression-check — the
//! tick-domain latency statistics, batching speedups, and a digest of every response byte.
//! Wall-clock throughput never enters the summary.

use bnn_models::ModelKind;
use bnn_serve::{BatchPolicy, InferenceEngine, ModelSpec, ServeRunReport, WorkloadSpec};
use shift_bnn::sweep::json::Json;

/// Weight seed of the frozen posteriors every serve benchmark builds.
pub const SERVE_WEIGHT_SEED: u64 = 2021;

/// Workload seed of the synthetic open-loop traces.
pub const SERVE_WORKLOAD_SEED: u64 = 7;

/// Ticks between arrivals: dense enough that coalescing policies actually coalesce.
pub const SERVE_INTERARRIVAL_TICKS: u64 = 2;

/// The model families the serve grid exercises (the two with distinct proxy architectures).
pub const SERVE_MODELS: [ModelKind; 2] = [ModelKind::Mlp, ModelKind::LeNet];

/// The Monte-Carlo sample counts the serve grid sweeps.
pub const SERVE_SAMPLES: [usize; 3] = [1, 4, 16];

/// The batching policies the serve grid sweeps; index 0 is the unbatched baseline that the
/// batched-vs-unbatched speedups are normalized against.
pub fn serve_policies() -> [BatchPolicy; 3] {
    [
        BatchPolicy::unbatched(),
        BatchPolicy { max_batch: 4, max_wait_ticks: 16 },
        BatchPolicy { max_batch: 16, max_wait_ticks: 64 },
    ]
}

/// One point of the serve grid: (model × S × batch policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// The served model family.
    pub kind: ModelKind,
    /// Monte-Carlo sample count every request asks for.
    pub samples: usize,
    /// The engine's batching policy.
    pub policy: BatchPolicy,
}

impl ServeConfig {
    /// The frozen-posterior spec this config serves.
    pub fn spec(&self) -> ModelSpec {
        ModelSpec::for_kind(self.kind, SERVE_WEIGHT_SEED)
    }

    /// The open-loop trace this config is driven with.
    pub fn workload(&self, requests: usize) -> WorkloadSpec {
        WorkloadSpec::uniform(requests, SERVE_INTERARRIVAL_TICKS, self.samples, SERVE_WORKLOAD_SEED)
    }
}

/// Enumerates the full serve grid, model-major then samples then policy — the order the
/// summary's records are committed in.
pub fn serve_configs() -> Vec<ServeConfig> {
    let mut configs = Vec::new();
    for &kind in &SERVE_MODELS {
        for &samples in &SERVE_SAMPLES {
            for policy in serve_policies() {
                configs.push(ServeConfig { kind, samples, policy });
            }
        }
    }
    configs
}

/// Requests per config: the full grid's trace length, or the CI-reduced one.
pub fn serve_request_count(reduced: bool) -> usize {
    if reduced {
        24
    } else {
        96
    }
}

/// Runs every grid config on `workers` pool threads and returns `(config, report)` pairs in
/// grid order. Every value a report carries except the recorded worker count is
/// worker-invariant, so any `workers` reproduces the committed summary.
pub fn run_serve_grid(reduced: bool, workers: usize) -> Vec<(ServeConfig, ServeRunReport)> {
    let requests = serve_request_count(reduced);
    serve_configs()
        .into_iter()
        .map(|config| {
            let spec = config.spec();
            let trace = config.workload(requests).generate(&spec);
            let report = InferenceEngine::new(spec, config.policy, workers).run(&trace);
            (config, report)
        })
        .collect()
}

/// The simulated batched-vs-unbatched speedup of each grid point: its unbatched sibling's
/// makespan over its own (1.0 for the unbatched baseline itself).
pub fn speedup_vs_unbatched(results: &[(ServeConfig, ServeRunReport)], index: usize) -> f64 {
    let (config, report) = &results[index];
    let baseline = results
        .iter()
        .find(|(c, _)| {
            c.kind == config.kind && c.samples == config.samples && c.policy.max_batch == 1
        })
        .expect("every (model, S) slice contains the unbatched baseline");
    baseline.1.makespan_ticks as f64 / report.makespan_ticks as f64
}

/// Builds the deterministic summary document from a grid run — the committed
/// `BENCH_serve_summary.json` regression baseline.
pub fn serve_summary_json(results: &[(ServeConfig, ServeRunReport)], reduced: bool) -> Json {
    let records: Vec<Json> = results
        .iter()
        .enumerate()
        .map(|(i, (config, report))| {
            Json::obj([
                ("model", Json::Str(report.model.clone())),
                ("samples", Json::UInt(config.samples as u64)),
                ("policy", Json::Str(config.policy.label())),
                ("batches", Json::UInt(report.batches.len() as u64)),
                ("mean_batch_size", Json::Float(report.mean_batch_size())),
                ("makespan_ticks", Json::UInt(report.makespan_ticks)),
                ("p50_ticks", Json::UInt(report.latency_percentile(0.50))),
                ("p95_ticks", Json::UInt(report.latency_percentile(0.95))),
                ("p99_ticks", Json::UInt(report.latency_percentile(0.99))),
                ("throughput_per_kilotick", Json::Float(report.throughput_per_kilotick())),
                ("speedup_vs_unbatched_sim", Json::Float(speedup_vs_unbatched(results, i))),
                ("responses_digest", Json::Str(report.responses_digest())),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("shift-bnn-serve-summary/v1".into())),
        ("reduced", Json::Bool(reduced)),
        (
            "workload",
            Json::obj([
                ("requests", Json::UInt(serve_request_count(reduced) as u64)),
                ("interarrival_ticks", Json::UInt(SERVE_INTERARRIVAL_TICKS)),
                ("seed", Json::UInt(SERVE_WORKLOAD_SEED)),
                ("weight_seed", Json::UInt(SERVE_WEIGHT_SEED)),
            ]),
        ),
        ("records", Json::Array(records)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_model_major() {
        let configs = serve_configs();
        assert_eq!(configs.len(), 2 * 3 * 3);
        assert_eq!(configs[0].kind, ModelKind::Mlp);
        assert_eq!(configs[0].policy.max_batch, 1, "unbatched baseline leads each slice");
        assert_eq!(configs[9].kind, ModelKind::LeNet);
    }

    #[test]
    fn reduced_grid_summary_is_worker_invariant() {
        let a = serve_summary_json(&run_serve_grid(true, 1), true);
        let b = serve_summary_json(&run_serve_grid(true, 3), true);
        assert_eq!(a.to_pretty(), b.to_pretty());
    }

    #[test]
    fn batched_policies_beat_the_unbatched_baseline_in_sim() {
        let results = run_serve_grid(true, 2);
        for (i, (config, _)) in results.iter().enumerate() {
            let speedup = speedup_vs_unbatched(&results, i);
            if config.policy.max_batch == 1 {
                assert_eq!(speedup, 1.0);
            } else {
                assert!(
                    speedup > 1.0,
                    "{} S={} {}: no simulated batching speedup ({speedup})",
                    config.kind.paper_name(),
                    config.samples,
                    config.policy.label()
                );
            }
        }
    }
}
