//! A swappable [`GlobalAlloc`] wrapper that counts heap activity.
//!
//! The scratch-arena rewrite's contract is that steady-state training iterations and served
//! requests perform **zero** heap allocations after warmup. That claim is only enforceable if
//! it is measured at the allocator, not inferred from code review — so test and benchmark
//! binaries install a [`CountingAlloc`] as their `#[global_allocator]`:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::system();
//!
//! // ... warm up ...
//! let before = ALLOC.allocations();
//! // ... steady-state work ...
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! The counter wraps [`System`] and adds two relaxed atomic increments per call — cheap enough
//! to leave on for whole benchmark binaries, and exact (no sampling).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts allocations and deallocations.
#[derive(Debug)]
pub struct CountingAlloc {
    allocations: AtomicU64,
    deallocations: AtomicU64,
}

impl CountingAlloc {
    /// Creates the counter (const, so it can be a `static`).
    pub const fn system() -> Self {
        Self { allocations: AtomicU64::new(0), deallocations: AtomicU64::new(0) }
    }

    /// Number of allocation calls (`alloc`, `alloc_zeroed`, and growth-`realloc`s) so far.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Number of deallocation calls so far.
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(Ordering::Relaxed)
    }
}

// SAFETY: defers every operation to `System`, only adding atomic counters.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc moves or resizes an existing block: count it as an allocation event —
        // the steady-state contract forbids those too.
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
