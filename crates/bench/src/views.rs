//! Figure/table computations as pure views over one shared design-space sweep.
//!
//! Before the sweep engine existed, every `fig*`/`table*` binary re-walked its own slice of the
//! evaluation grid with hand-rolled loops. Now the computation of each figure lives here as a
//! function from a [`SweepReport`] (or, for the training-based artifacts, from the sweep
//! engine's worker pool) to a plain data struct; the binaries only *render*, and the golden
//! conformance suite (`tests/golden_figures.rs`) asserts on the same structs — so the numbers
//! in `EXPERIMENTS.md` can no longer drift silently.

use bnn_arch::resource::ResourceUsage;
use bnn_arch::resource::{accelerator_usage, component_usage, spu_usage, SpuComponent};
use bnn_models::ModelKind;
use bnn_tensor::Precision;
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpochMetrics, EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn::compare::geometric_mean;
use shift_bnn::designs::DesignKind;
use shift_bnn::scalability::{ScalabilityPoint, FIG13_SAMPLE_COUNTS};
use shift_bnn::sweep::{pool, SweepReport};

/// The sample counts of Fig. 2's BNN-vs-DNN comparison.
pub const FIG02_SAMPLE_COUNTS: [usize; 5] = [1, 8, 16, 24, 32];

/// The sample count Figs. 3, 10, 11, 12 and 14 are evaluated at.
pub const HEADLINE_SAMPLES: usize = 16;

/// The three models Fig. 13 sweeps.
pub const FIG13_MODELS: [ModelKind; 3] = [ModelKind::Mlp, ModelKind::LeNet, ModelKind::Vgg16];

fn headline_value(values: &[(DesignKind, f64)], design: DesignKind) -> f64 {
    values.iter().find(|(d, _)| *d == design).map(|(_, v)| *v).expect("design present")
}

/// One Fig. 2 row: BNN cost at `samples` normalized to the DNN counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig02Row {
    /// `"<DNN> / <BNN>"` label.
    pub label: String,
    /// Monte-Carlo sample count of the BNN run.
    pub samples: usize,
    /// DRAM-byte ratio BNN / DNN.
    pub transfer: f64,
    /// Energy ratio BNN / DNN.
    pub energy: f64,
    /// Latency ratio BNN / DNN.
    pub latency: f64,
}

/// Fig. 2: BNN training cost normalized to the DNN counterpart on MN-Acc.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig02 {
    /// One row per (model, S).
    pub rows: Vec<Fig02Row>,
    /// `(S, average transfer ratio)` for the paper's S = 8 and S = 32 headlines.
    pub average_transfer: Vec<(usize, f64)>,
}

/// Computes Fig. 2 from the shared sweep.
pub fn fig02(sweep: &SweepReport) -> Fig02 {
    let mut rows = Vec::new();
    for kind in ModelKind::all() {
        let dnn = sweep.evaluation(DesignKind::MnAcc, &kind.dnn().name, 1);
        for &s in &FIG02_SAMPLE_COUNTS {
            let bnn = sweep.evaluation(DesignKind::MnAcc, kind.paper_name(), s);
            rows.push(Fig02Row {
                label: format!("{} / {}", kind.dnn().name, kind.paper_name()),
                samples: s,
                transfer: bnn.report.dram_bytes as f64 / dnn.report.dram_bytes as f64,
                energy: bnn.energy_mj() / dnn.energy_mj(),
                latency: bnn.latency_s() / dnn.latency_s(),
            });
        }
    }
    let average_transfer = [8usize, 32]
        .iter()
        .map(|&s| {
            let ratios: Vec<f64> =
                rows.iter().filter(|r| r.samples == s).map(|r| r.transfer).collect();
            (s, ratios.iter().sum::<f64>() / ratios.len() as f64)
        })
        .collect();
    Fig02 { rows, average_transfer }
}

/// Fig. 3: the operand breakdown of baseline off-chip traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig03 {
    /// `(model, weights fraction, ε fraction, feature fraction)` per model.
    pub rows: Vec<(String, f64, f64, f64)>,
    /// Average ε share across the five models.
    pub average_epsilon: f64,
}

/// Computes Fig. 3 from the shared sweep.
pub fn fig03(sweep: &SweepReport) -> Fig03 {
    let rows: Vec<(String, f64, f64, f64)> = ModelKind::all()
        .iter()
        .map(|kind| {
            let report =
                sweep.evaluation(DesignKind::MnAcc, kind.paper_name(), HEADLINE_SAMPLES).report;
            let (w, e, f) = report.dram_traffic.fractions();
            (kind.paper_name().to_string(), w, e, f)
        })
        .collect();
    let average_epsilon = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
    Fig03 { rows, average_epsilon }
}

/// Per-design values of one model row in a four-design figure.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignRow {
    /// Paper model name.
    pub model: String,
    /// Value for MN-Acc.
    pub mn: f64,
    /// Value for MNShift-Acc.
    pub mnshift: f64,
    /// Value for RC-Acc.
    pub rc: f64,
    /// Value for Shift-BNN.
    pub shift: f64,
}

/// Fig. 10: normalized energy (MN-Acc = 1.0) plus the three headline reductions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// One row per model.
    pub rows: Vec<DesignRow>,
    /// Geometric-mean fractional reduction of Shift-BNN vs RC-Acc.
    pub reduction_vs_rc: f64,
    /// Geometric-mean fractional reduction of Shift-BNN vs MN-Acc.
    pub reduction_vs_mn: f64,
    /// Geometric-mean fractional reduction of Shift-BNN vs MNShift-Acc.
    pub reduction_vs_mnshift: f64,
}

/// Computes Fig. 10 from the shared sweep.
pub fn fig10(sweep: &SweepReport) -> Fig10 {
    let mut rows = Vec::new();
    let (mut vs_rc, mut vs_mn, mut vs_mnshift) = (Vec::new(), Vec::new(), Vec::new());
    for kind in ModelKind::all() {
        let cmp = sweep.comparison(kind.paper_name(), HEADLINE_SAMPLES);
        let normalized = cmp.normalized_energy(DesignKind::MnAcc);
        let value = |d| headline_value(&normalized, d);
        rows.push(DesignRow {
            model: kind.paper_name().to_string(),
            mn: value(DesignKind::MnAcc),
            mnshift: value(DesignKind::MnShiftAcc),
            rc: value(DesignKind::RcAcc),
            shift: value(DesignKind::ShiftBnn),
        });
        vs_rc.push(value(DesignKind::ShiftBnn) / value(DesignKind::RcAcc));
        vs_mn.push(value(DesignKind::ShiftBnn) / value(DesignKind::MnAcc));
        vs_mnshift.push(value(DesignKind::ShiftBnn) / value(DesignKind::MnShiftAcc));
    }
    Fig10 {
        rows,
        reduction_vs_rc: 1.0 - geometric_mean(&vs_rc),
        reduction_vs_mn: 1.0 - geometric_mean(&vs_mn),
        reduction_vs_mnshift: 1.0 - geometric_mean(&vs_mnshift),
    }
}

/// Fig. 11: speedup over MN-Acc plus the Shift-BNN-vs-RC-Acc headline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// One row per model.
    pub rows: Vec<DesignRow>,
    /// Geometric-mean speedup of Shift-BNN over RC-Acc.
    pub shift_over_rc: f64,
}

/// Computes Fig. 11 from the shared sweep.
pub fn fig11(sweep: &SweepReport) -> Fig11 {
    let mut rows = Vec::new();
    let mut shift_over_rc = Vec::new();
    for kind in ModelKind::all() {
        let cmp = sweep.comparison(kind.paper_name(), HEADLINE_SAMPLES);
        let speedups = cmp.speedup_over(DesignKind::MnAcc);
        let value = |d| headline_value(&speedups, d);
        rows.push(DesignRow {
            model: kind.paper_name().to_string(),
            mn: value(DesignKind::MnAcc),
            mnshift: value(DesignKind::MnShiftAcc),
            rc: value(DesignKind::RcAcc),
            shift: value(DesignKind::ShiftBnn),
        });
        shift_over_rc.push(value(DesignKind::ShiftBnn) / value(DesignKind::RcAcc));
    }
    Fig11 { rows, shift_over_rc: geometric_mean(&shift_over_rc) }
}

/// One Fig. 12 row: the four designs plus the GPU, normalized to MN-Acc.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// The four-design values.
    pub designs: DesignRow,
    /// The GPU comparison point.
    pub gpu: f64,
}

/// Fig. 12: normalized energy efficiency (GOPS/W) and the three headline ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// One row per model.
    pub rows: Vec<Fig12Row>,
    /// Geometric-mean Shift-BNN / RC-Acc efficiency ratio.
    pub shift_vs_rc: f64,
    /// Geometric-mean Shift-BNN / MN-Acc efficiency ratio.
    pub shift_vs_mn: f64,
    /// Geometric-mean Shift-BNN / GPU efficiency ratio.
    pub shift_vs_gpu: f64,
}

/// Computes Fig. 12 from the shared sweep (the GPU roofline point is evaluated directly — it
/// is not one of the grid's accelerator designs).
pub fn fig12(sweep: &SweepReport) -> Fig12 {
    let mut rows = Vec::new();
    let (mut vs_rc, mut vs_mn, mut vs_gpu) = (Vec::new(), Vec::new(), Vec::new());
    for kind in ModelKind::all() {
        let model = kind.bnn();
        let cmp = sweep.comparison(kind.paper_name(), HEADLINE_SAMPLES);
        let eff = cmp.normalized_efficiency(DesignKind::MnAcc);
        let value = |d| headline_value(&eff, d);
        let gpu = cmp.gpu_normalized_efficiency(&model, DesignKind::MnAcc);
        rows.push(Fig12Row {
            designs: DesignRow {
                model: kind.paper_name().to_string(),
                mn: value(DesignKind::MnAcc),
                mnshift: value(DesignKind::MnShiftAcc),
                rc: value(DesignKind::RcAcc),
                shift: value(DesignKind::ShiftBnn),
            },
            gpu,
        });
        vs_rc.push(value(DesignKind::ShiftBnn) / value(DesignKind::RcAcc));
        vs_mn.push(value(DesignKind::ShiftBnn) / value(DesignKind::MnAcc));
        vs_gpu.push(value(DesignKind::ShiftBnn) / gpu);
    }
    Fig12 {
        rows,
        shift_vs_rc: geometric_mean(&vs_rc),
        shift_vs_mn: geometric_mean(&vs_mn),
        shift_vs_gpu: geometric_mean(&vs_gpu),
    }
}

/// Fig. 13: the scalability points of the three swept models.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// `(model, points at each S of FIG13_SAMPLE_COUNTS)`.
    pub models: Vec<(ModelKind, Vec<ScalabilityPoint>)>,
}

/// Computes Fig. 13 from the shared sweep.
pub fn fig13(sweep: &SweepReport) -> Fig13 {
    let models = FIG13_MODELS
        .iter()
        .map(|&kind| (kind, sweep.scalability(kind.paper_name(), &FIG13_SAMPLE_COUNTS)))
        .collect();
    Fig13 { models }
}

/// One Fig. 14 access row with the baseline's operand breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14AccessRow {
    /// The normalized DRAM-access counts.
    pub designs: DesignRow,
    /// MN-Acc's `(weights, ε, features)` traffic fractions.
    pub baseline_fractions: (f64, f64, f64),
}

/// Fig. 14: normalized DRAM accesses (top) and memory footprint (bottom).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14 {
    /// Top half: DRAM accesses normalized to MN-Acc.
    pub access_rows: Vec<Fig14AccessRow>,
    /// Bottom half: memory footprint normalized to MN-Acc.
    pub footprint_rows: Vec<DesignRow>,
    /// Average fractional footprint reduction of Shift-BNN.
    pub average_footprint_reduction: f64,
}

/// Computes Fig. 14 from the shared sweep.
pub fn fig14(sweep: &SweepReport) -> Fig14 {
    let mut access_rows = Vec::new();
    let mut footprint_rows = Vec::new();
    let mut footprint_savings = Vec::new();
    for kind in ModelKind::all() {
        let cmp = sweep.comparison(kind.paper_name(), HEADLINE_SAMPLES);
        let accesses = cmp.normalized_dram_accesses(DesignKind::MnAcc);
        let footprints = cmp.normalized_footprint(DesignKind::MnAcc);
        let access = |d| headline_value(&accesses, d);
        let footprint = |d| headline_value(&footprints, d);
        let label = format!("{}-{}", kind.paper_name(), HEADLINE_SAMPLES);
        access_rows.push(Fig14AccessRow {
            designs: DesignRow {
                model: label.clone(),
                mn: access(DesignKind::MnAcc),
                mnshift: access(DesignKind::MnShiftAcc),
                rc: access(DesignKind::RcAcc),
                shift: access(DesignKind::ShiftBnn),
            },
            baseline_fractions: cmp.of(DesignKind::MnAcc).report.dram_traffic.fractions(),
        });
        footprint_rows.push(DesignRow {
            model: label,
            mn: footprint(DesignKind::MnAcc),
            mnshift: footprint(DesignKind::MnShiftAcc),
            rc: footprint(DesignKind::RcAcc),
            shift: footprint(DesignKind::ShiftBnn),
        });
        footprint_savings.push(1.0 - footprint(DesignKind::ShiftBnn));
    }
    let average_footprint_reduction =
        footprint_savings.iter().sum::<f64>() / footprint_savings.len() as f64;
    Fig14 { access_rows, footprint_rows, average_footprint_reduction }
}

/// Table 2: the FPGA resource model's per-component, per-SPU and whole-accelerator usage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// `(component name, usage)` per SPU component.
    pub components: Vec<(String, ResourceUsage)>,
    /// One-SPU totals.
    pub spu: ResourceUsage,
    /// 16-SPU + control totals.
    pub accelerator: ResourceUsage,
}

/// Computes Table 2 for the Shift-BNN design.
pub fn table2() -> Table2 {
    let config = DesignKind::ShiftBnn.config();
    let components = SpuComponent::all()
        .iter()
        .map(|&c| (c.name().to_string(), component_usage(c, &config)))
        .collect();
    Table2 { components, spu: spu_usage(&config), accelerator: accelerator_usage(&config) }
}

/// One epoch of the Fig. 9 training-equivalence run.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09Row {
    /// Epoch number (1-based).
    pub epoch: usize,
    /// Mean training loss of the store-and-replay baseline.
    pub loss_baseline: f32,
    /// Mean training loss of the LFSR-retrieval (Shift-BNN) path.
    pub loss_shift: f32,
    /// Validation accuracy of the baseline.
    pub acc_baseline: f64,
    /// Validation accuracy of the Shift-BNN path.
    pub acc_shift: f64,
}

/// Fig. 9: the two training arms, epoch by epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09 {
    /// Per-epoch metrics of both arms.
    pub rows: Vec<Fig09Row>,
    /// Whether every epoch's loss and accuracy were bit-identical across the arms.
    pub identical: bool,
    /// ε values the baseline stored off-chip.
    pub baseline_stored: u64,
    /// ε values the Shift-BNN path stored (zero by construction).
    pub shift_stored: u64,
}

fn fig09_arm(strategy: EpsilonStrategy, epochs: usize) -> (Vec<(EpochMetrics, f64)>, u64) {
    let mut rng = StdRng::seed_from_u64(2021);
    let config = BayesConfig { kl_weight: 1e-4, ..BayesConfig::default() }
        .with_precision(Precision::PAPER_16BIT);
    let network = Network::bayes_lenet(&[3, 16, 16], 4, config, &mut rng);
    let mut trainer =
        Trainer::new(network, TrainerConfig { samples: 4, learning_rate: 0.05, strategy, seed: 7 })
            .expect("trainer construction");
    // High per-example noise keeps the task from being trivially separable, so the curve has a
    // visible learning phase like the paper's Fig. 9.
    let dataset = SyntheticDataset::generate(&[3, 16, 16], 4, 20, 1.6, 31);
    let (train, val) = dataset.split(0.75);
    let mut metrics = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let m = trainer.train_epoch(&train).expect("train epoch");
        let acc = trainer.evaluate(&val).expect("evaluate");
        metrics.push((m, acc));
    }
    (metrics, trainer.stored_epsilons())
}

/// Runs the Fig. 9 equivalence experiment for `epochs` epochs; the two arms execute in
/// parallel on the sweep engine's worker pool.
pub fn fig09(epochs: usize) -> Fig09 {
    let strategies = [EpsilonStrategy::StoreReplay, EpsilonStrategy::LfsrRetrieve];
    let mut arms = pool::run_indexed(2, 2, |i| fig09_arm(strategies[i], epochs));
    let (shift_metrics, shift_stored) = arms.pop().expect("shift arm");
    let (baseline_metrics, baseline_stored) = arms.pop().expect("baseline arm");
    let mut identical = true;
    let rows = baseline_metrics
        .iter()
        .zip(&shift_metrics)
        .enumerate()
        .map(|(i, (&(mb, ab), &(ms, asft)))| {
            identical &= mb == ms && (ab - asft).abs() < f64::EPSILON;
            Fig09Row {
                epoch: i + 1,
                loss_baseline: mb.mean_loss,
                loss_shift: ms.mean_loss,
                acc_baseline: ab,
                acc_shift: asft,
            }
        })
        .collect();
    Fig09 { rows, identical, baseline_stored, shift_stored }
}

/// One scaled-down model family of the Table 1 precision study.
pub struct Table1Family {
    /// Display name.
    pub name: &'static str,
    /// Dataset label.
    pub dataset_name: &'static str,
    /// Whether the family trains the convolutional (LeNet-style) network.
    pub conv: bool,
    /// Input shape.
    pub input: Vec<usize>,
    /// Class count.
    pub classes: usize,
    /// Training epochs.
    pub epochs: usize,
}

/// The five scaled-down families of Table 1.
pub fn table1_families() -> Vec<Table1Family> {
    vec![
        Table1Family {
            name: "B-MLP",
            dataset_name: "MNIST (synthetic)",
            conv: false,
            input: vec![64],
            classes: 4,
            epochs: 14,
        },
        Table1Family {
            name: "B-LeNet",
            dataset_name: "CIFAR-10 (synthetic)",
            conv: true,
            input: vec![3, 12, 12],
            classes: 3,
            epochs: 12,
        },
        Table1Family {
            name: "B-AlexNet (reduced)",
            dataset_name: "ImageNet (synthetic)",
            conv: true,
            input: vec![3, 12, 12],
            classes: 3,
            epochs: 12,
        },
        Table1Family {
            name: "B-VGG (reduced)",
            dataset_name: "ImageNet (synthetic)",
            conv: true,
            input: vec![3, 12, 12],
            classes: 3,
            epochs: 12,
        },
        Table1Family {
            name: "B-ResNet (reduced)",
            dataset_name: "ImageNet (synthetic)",
            conv: true,
            input: vec![3, 12, 12],
            classes: 3,
            epochs: 12,
        },
    ]
}

/// The three precisions of Table 1's columns, with their display labels.
pub fn table1_precisions() -> [(&'static str, Precision); 3] {
    [
        ("8-bit", Precision::PAPER_8BIT),
        ("16-bit", Precision::PAPER_16BIT),
        ("32-bit", Precision::Fp32),
    ]
}

/// Trains one Table 1 cell and returns its validation accuracy, or `None` on divergence.
pub fn table1_cell(family: &Table1Family, precision: Precision, seed: u64) -> Option<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config =
        BayesConfig { kl_weight: 5e-4, ..BayesConfig::default() }.with_precision(precision);
    let network = if family.conv {
        let shape = [family.input[0], family.input[1], family.input[2]];
        Network::bayes_lenet(&shape, family.classes, config, &mut rng)
    } else {
        Network::bayes_mlp(family.input[0], &[48, 32], family.classes, config, &mut rng)
    };
    let dataset = SyntheticDataset::generate(&family.input, family.classes, 20, 1.1, seed ^ 0xD00D);
    let (train, val) = dataset.split(0.8);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig {
            samples: 2,
            learning_rate: 0.06,
            strategy: EpsilonStrategy::LfsrRetrieve,
            seed,
        },
    )
    .ok()?;
    for _ in 0..family.epochs {
        match trainer.train_epoch(&train) {
            Ok(metrics) if metrics.mean_loss.is_finite() => {}
            _ => return None,
        }
    }
    trainer.evaluate(&val).ok().filter(|a| a.is_finite())
}

/// One Table 1 row: a family's accuracy at the three precisions (`None` = diverged/NaN).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Family display name.
    pub network: String,
    /// Dataset label.
    pub dataset: String,
    /// Accuracy at 8, 16 and 32 bits.
    pub accuracies: [Option<f64>; 3],
}

/// Table 1: every (family × precision) training cell, executed in parallel on the worker pool.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// One row per family.
    pub rows: Vec<Table1Row>,
}

/// Runs the Table 1 precision study. The 15 independent training cells are scheduled on the
/// sweep engine's work-stealing pool; each cell re-derives its own seeds, so the results are
/// identical to the old serial loop.
pub fn table1() -> Table1 {
    let families = table1_families();
    let precisions = table1_precisions();
    let cells =
        pool::run_indexed(families.len() * precisions.len(), pool::default_workers(), |i| {
            let family = &families[i / precisions.len()];
            let (_, precision) = precisions[i % precisions.len()];
            table1_cell(family, precision, 100 + (i / precisions.len()) as u64)
        });
    let rows = families
        .iter()
        .enumerate()
        .map(|(f, family)| Table1Row {
            network: family.name.to_string(),
            dataset: family.dataset_name.to_string(),
            accuracies: [cells[f * 3], cells[f * 3 + 1], cells[f * 3 + 2]],
        })
        .collect();
    Table1 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_arch::EnergyModel;
    use shift_bnn::sweep::{run_sweep, SweepGrid};

    fn sweep() -> SweepReport {
        run_sweep(&SweepGrid::paper_figures(), pool::default_workers(), &EnergyModel::default())
    }

    #[test]
    fn figure_views_cover_every_model_row() {
        let sweep = sweep();
        assert_eq!(fig02(&sweep).rows.len(), 5 * FIG02_SAMPLE_COUNTS.len());
        assert_eq!(fig03(&sweep).rows.len(), 5);
        assert_eq!(fig10(&sweep).rows.len(), 5);
        assert_eq!(fig11(&sweep).rows.len(), 5);
        assert_eq!(fig12(&sweep).rows.len(), 5);
        assert_eq!(fig13(&sweep).models.len(), 3);
        let f14 = fig14(&sweep);
        assert_eq!(f14.access_rows.len(), 5);
        assert_eq!(f14.footprint_rows.len(), 5);
    }

    #[test]
    fn headline_trends_match_the_paper() {
        let sweep = sweep();
        let f10 = fig10(&sweep);
        assert!(f10.reduction_vs_rc > 0.5 && f10.reduction_vs_rc < 0.9);
        assert!(fig11(&sweep).shift_over_rc > 1.0);
        let f12 = fig12(&sweep);
        assert!(f12.shift_vs_rc > 1.0 && f12.shift_vs_gpu > 1.0);
        assert!(fig14(&sweep).average_footprint_reduction > 0.5);
    }

    #[test]
    fn table2_totals_are_component_sums() {
        let t2 = table2();
        let lut: u64 = t2.components.iter().map(|(_, u)| u.lut).sum();
        assert_eq!(lut, t2.spu.lut);
        assert!(t2.accelerator.lut > 16 * t2.spu.lut, "control logic adds LUTs");
    }
}
