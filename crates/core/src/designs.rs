//! The four accelerator designs compared in the paper's evaluation.
//!
//! | Design | Mapping | LFSR reversion |
//! |---|---|---|
//! | MN-Acc | MN (Diannao-like output stationary) | no |
//! | RC-Acc | RC (ShiDianNao-like) | no |
//! | MNShift-Acc | MN | yes (with the Fig. 7(c) duplicated-adder-tree workaround) |
//! | Shift-BNN | RC | yes |
//!
//! All four use 16 SPUs with 4×4 PE tiles, the same on-chip buffer capacity, a 200 MHz clock and
//! a 16-bit datapath, as required for the paper's "fair comparison".

use bnn_arch::{AcceleratorConfig, MappingKind};

/// One of the paper's four comparison designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// MN-mapping baseline without LFSR reversion (the paper's general baseline).
    MnAcc,
    /// RC-mapping baseline without LFSR reversion.
    RcAcc,
    /// MN-mapping with LFSR reversion (design-space-exploration alternative).
    MnShiftAcc,
    /// The proposed design: RC mapping with LFSR reversion.
    ShiftBnn,
}

impl DesignKind {
    /// All four designs in the order the paper's figures list them.
    pub fn all() -> [DesignKind; 4] {
        [DesignKind::MnAcc, DesignKind::RcAcc, DesignKind::MnShiftAcc, DesignKind::ShiftBnn]
    }

    /// The name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            DesignKind::MnAcc => "MN-Acc",
            DesignKind::RcAcc => "RC-Acc",
            DesignKind::MnShiftAcc => "MNShift-Acc",
            DesignKind::ShiftBnn => "Shift-BNN",
        }
    }

    /// Whether the design retrieves ε by reversed LFSR shifting.
    pub fn uses_lfsr_reversion(&self) -> bool {
        matches!(self, DesignKind::MnShiftAcc | DesignKind::ShiftBnn)
    }

    /// The computation mapping the design uses.
    pub fn mapping(&self) -> MappingKind {
        match self {
            DesignKind::MnAcc | DesignKind::MnShiftAcc => MappingKind::Mn,
            DesignKind::RcAcc | DesignKind::ShiftBnn => MappingKind::Rc,
        }
    }

    /// The full hardware configuration of the design.
    pub fn config(&self) -> AcceleratorConfig {
        AcceleratorConfig {
            name: self.name().to_string(),
            mapping: self.mapping(),
            lfsr_reversion: self.uses_lfsr_reversion(),
            ..AcceleratorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_designs_with_paper_names() {
        let names: Vec<&str> = DesignKind::all().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["MN-Acc", "RC-Acc", "MNShift-Acc", "Shift-BNN"]);
    }

    #[test]
    fn reversion_and_mapping_assignments_match_the_paper() {
        assert!(!DesignKind::MnAcc.uses_lfsr_reversion());
        assert!(!DesignKind::RcAcc.uses_lfsr_reversion());
        assert!(DesignKind::MnShiftAcc.uses_lfsr_reversion());
        assert!(DesignKind::ShiftBnn.uses_lfsr_reversion());
        assert_eq!(DesignKind::ShiftBnn.mapping(), MappingKind::Rc);
        assert_eq!(DesignKind::MnShiftAcc.mapping(), MappingKind::Mn);
    }

    #[test]
    fn all_designs_share_fair_comparison_resources() {
        let configs: Vec<AcceleratorConfig> =
            DesignKind::all().iter().map(|d| d.config()).collect();
        for cfg in &configs {
            assert_eq!(cfg.spus, 16);
            assert_eq!(cfg.pe_tile.count(), 16);
            assert_eq!(cfg.precision_bytes, 2);
            assert_eq!(cfg.frequency_mhz, 200.0);
            assert_eq!(cfg.neuron_buffer_kib, configs[0].neuron_buffer_kib);
            assert_eq!(cfg.weight_buffer_kib, configs[0].weight_buffer_kib);
        }
    }
}
