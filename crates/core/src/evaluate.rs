//! Evaluation of a BNN training workload on one accelerator design.

use crate::designs::DesignKind;
use bnn_arch::gpu::{simulate_gpu_training, GpuModel, GpuReport};
use bnn_arch::simulate::{simulate_training, TrainingRunReport};
use bnn_arch::EnergyModel;
use bnn_models::ModelConfig;

/// The result of running one model's training iteration on one design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignEvaluation {
    /// Which design was evaluated.
    pub design: DesignKind,
    /// The simulator's full report.
    pub report: TrainingRunReport,
}

impl DesignEvaluation {
    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.report.total_energy_mj()
    }

    /// End-to-end latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.report.latency_s
    }

    /// DRAM accesses in values.
    pub fn dram_accesses(&self) -> u64 {
        self.report.dram_traffic.total()
    }

    /// Energy efficiency in GOPS/W.
    pub fn gops_per_watt(&self) -> f64 {
        self.report.gops_per_watt()
    }

    /// Peak memory footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.report.footprint.total_bytes()
    }
}

/// Evaluates `model` with `samples` Monte-Carlo samples on `design` using the default energy
/// model.
pub fn evaluate(design: DesignKind, model: &ModelConfig, samples: usize) -> DesignEvaluation {
    evaluate_with(design, model, samples, &EnergyModel::default())
}

/// Evaluates `model` on `design` with an explicit energy model (for sensitivity studies).
pub fn evaluate_with(
    design: DesignKind,
    model: &ModelConfig,
    samples: usize,
    energy: &EnergyModel,
) -> DesignEvaluation {
    let report = simulate_training(&design.config(), model, samples, energy);
    DesignEvaluation { design, report }
}

/// Evaluates `model` on `design` with the datapath widened or narrowed to `precision_bytes`
/// per value — the precision axis of the design-space sweep grid. All other parameters keep
/// the design's fair-comparison defaults.
pub fn evaluate_with_precision(
    design: DesignKind,
    model: &ModelConfig,
    samples: usize,
    precision_bytes: usize,
    energy: &EnergyModel,
) -> DesignEvaluation {
    let mut config = design.config();
    config.precision_bytes = precision_bytes;
    let report = simulate_training(&config, model, samples, energy);
    DesignEvaluation { design, report }
}

/// Evaluates the GPU comparison point (Tesla P100) on the same workload.
pub fn evaluate_gpu(model: &ModelConfig, samples: usize) -> (GpuModel, GpuReport) {
    let gpu = GpuModel::tesla_p100();
    let report = simulate_gpu_training(&gpu, model, samples);
    (gpu, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::ModelKind;

    #[test]
    fn shift_bnn_beats_rc_acc_on_energy_for_every_model() {
        for kind in ModelKind::all() {
            let model = kind.bnn();
            let rc = evaluate(DesignKind::RcAcc, &model, 16);
            let shift = evaluate(DesignKind::ShiftBnn, &model, 16);
            assert!(
                shift.energy_mj() < rc.energy_mj(),
                "{}: {} vs {}",
                kind.paper_name(),
                shift.energy_mj(),
                rc.energy_mj()
            );
            assert!(shift.dram_accesses() < rc.dram_accesses());
        }
    }

    #[test]
    fn mnshift_improves_on_mn_but_less_than_shift_bnn_on_rc() {
        // The design-space-exploration conclusion: reversion helps MN too, but the duplicated
        // adder trees blunt the benefit relative to RC.
        let model = ModelKind::LeNet.bnn();
        let mn = evaluate(DesignKind::MnAcc, &model, 16);
        let mnshift = evaluate(DesignKind::MnShiftAcc, &model, 16);
        let rc = evaluate(DesignKind::RcAcc, &model, 16);
        let shift = evaluate(DesignKind::ShiftBnn, &model, 16);
        let mn_saving = 1.0 - mnshift.energy_mj() / mn.energy_mj();
        let rc_saving = 1.0 - shift.energy_mj() / rc.energy_mj();
        assert!(mn_saving > 0.0);
        assert!(rc_saving > mn_saving, "RC saving {rc_saving} vs MN saving {mn_saving}");
    }

    #[test]
    fn precision_override_scales_traffic_bytes_only() {
        let model = ModelKind::LeNet.bnn();
        let energy = bnn_arch::EnergyModel::default();
        let b16 = evaluate_with_precision(DesignKind::RcAcc, &model, 8, 2, &energy);
        let b32 = evaluate_with_precision(DesignKind::RcAcc, &model, 8, 4, &energy);
        assert_eq!(b16.report, evaluate(DesignKind::RcAcc, &model, 8).report);
        assert_eq!(2 * b16.report.dram_bytes, b32.report.dram_bytes);
        assert_eq!(b16.dram_accesses(), b32.dram_accesses(), "value counts are width-independent");
    }

    #[test]
    fn gpu_evaluation_produces_comparable_metrics() {
        let model = ModelKind::Mlp.bnn();
        let (gpu, report) = evaluate_gpu(&model, 16);
        assert!(report.latency_s > 0.0);
        assert!(report.gops_per_watt(gpu.sustained_power_w) > 0.0);
    }

    #[test]
    fn evaluation_exposes_footprint_and_efficiency() {
        let model = ModelKind::LeNet.bnn();
        let shift = evaluate(DesignKind::ShiftBnn, &model, 16);
        let rc = evaluate(DesignKind::RcAcc, &model, 16);
        assert!(shift.footprint_bytes() < rc.footprint_bytes());
        assert!(shift.gops_per_watt() > rc.gops_per_watt());
        assert!(shift.latency_s() <= rc.latency_s());
    }
}
