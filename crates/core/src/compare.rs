//! Multi-design, multi-model comparisons — the data behind Figs. 10, 11, 12 and 14.

use crate::designs::DesignKind;
use crate::evaluate::{evaluate_gpu, evaluate_with, DesignEvaluation};
use crate::sweep::pool::default_workers;
use crate::sweep::{run_sweep, SweepGrid, SweepPrecision};
use bnn_arch::EnergyModel;
use bnn_models::ModelConfig;

/// Evaluations of every requested design on one model/workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignComparison {
    /// Model name.
    pub model: String,
    /// Sample count `S`.
    pub samples: usize,
    /// One evaluation per design, in the order requested.
    pub evaluations: Vec<DesignEvaluation>,
}

impl DesignComparison {
    /// Runs `model` on every design in `designs` with `samples` samples.
    pub fn run(model: &ModelConfig, samples: usize, designs: &[DesignKind]) -> Self {
        Self::run_with(model, samples, designs, &EnergyModel::default())
    }

    /// Same as [`run`](Self::run) with an explicit energy model.
    pub fn run_with(
        model: &ModelConfig,
        samples: usize,
        designs: &[DesignKind],
        energy: &EnergyModel,
    ) -> Self {
        let evaluations =
            designs.iter().map(|&d| evaluate_with(d, model, samples, energy)).collect();
        Self { model: model.name.clone(), samples, evaluations }
    }

    /// The evaluation of a specific design.
    ///
    /// # Panics
    ///
    /// Panics if the design was not part of the comparison.
    pub fn of(&self, design: DesignKind) -> &DesignEvaluation {
        self.evaluations
            .iter()
            .find(|e| e.design == design)
            .unwrap_or_else(|| panic!("design {} not evaluated", design.name()))
    }

    /// Energy of every design normalized to `baseline` (baseline = 1.0). Fig. 10's metric.
    pub fn normalized_energy(&self, baseline: DesignKind) -> Vec<(DesignKind, f64)> {
        let base = self.of(baseline).energy_mj();
        self.evaluations.iter().map(|e| (e.design, e.energy_mj() / base)).collect()
    }

    /// Speedup of every design over `baseline`. Fig. 11's metric.
    pub fn speedup_over(&self, baseline: DesignKind) -> Vec<(DesignKind, f64)> {
        let base = self.of(baseline).latency_s();
        self.evaluations.iter().map(|e| (e.design, base / e.latency_s())).collect()
    }

    /// Energy efficiency (GOPS/W) of every design, normalized to `baseline`. Fig. 12's metric.
    pub fn normalized_efficiency(&self, baseline: DesignKind) -> Vec<(DesignKind, f64)> {
        let base = self.of(baseline).gops_per_watt();
        self.evaluations.iter().map(|e| (e.design, e.gops_per_watt() / base)).collect()
    }

    /// DRAM accesses of every design normalized to `baseline`, plus the per-operand fractions.
    /// Fig. 14's metric.
    pub fn normalized_dram_accesses(&self, baseline: DesignKind) -> Vec<(DesignKind, f64)> {
        let base = self.of(baseline).dram_accesses() as f64;
        self.evaluations.iter().map(|e| (e.design, e.dram_accesses() as f64 / base)).collect()
    }

    /// Memory footprint of every design normalized to `baseline`.
    pub fn normalized_footprint(&self, baseline: DesignKind) -> Vec<(DesignKind, f64)> {
        let base = self.of(baseline).footprint_bytes() as f64;
        self.evaluations.iter().map(|e| (e.design, e.footprint_bytes() as f64 / base)).collect()
    }

    /// The GPU's energy efficiency normalized to `baseline`'s (the extra bar in Fig. 12).
    pub fn gpu_normalized_efficiency(&self, model: &ModelConfig, baseline: DesignKind) -> f64 {
        let (gpu, report) = evaluate_gpu(model, self.samples);
        report.gops_per_watt(gpu.sustained_power_w) / self.of(baseline).gops_per_watt()
    }
}

/// Convenience: compares all four designs on a list of models and returns one comparison per
/// model.
///
/// Runs the (model × design) grid through the sweep engine, so the evaluations execute on the
/// work-stealing pool instead of serially; results are identical to per-model
/// [`DesignComparison::run`] calls (the sweep orders records by grid index, not completion).
pub fn compare_all_designs(models: &[ModelConfig], samples: usize) -> Vec<DesignComparison> {
    let grid = SweepGrid {
        designs: DesignKind::all().to_vec(),
        models: models.to_vec(),
        sample_counts: vec![samples],
        precisions: vec![SweepPrecision::Bits16],
    };
    let report = run_sweep(&grid, default_workers(), &EnergyModel::default());
    models.iter().map(|m| report.comparison(&m.name, samples)).collect()
}

/// Geometric-mean helper used for "average across models" statements.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::ModelKind;

    #[test]
    fn normalization_sets_baseline_to_one() {
        let cmp = DesignComparison::run(&ModelKind::LeNet.bnn(), 16, &DesignKind::all());
        let energy = cmp.normalized_energy(DesignKind::MnAcc);
        let baseline = energy.iter().find(|(d, _)| *d == DesignKind::MnAcc).unwrap();
        assert!((baseline.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_bnn_wins_every_headline_metric() {
        for kind in [ModelKind::Mlp, ModelKind::LeNet, ModelKind::Vgg16] {
            let cmp = DesignComparison::run(&kind.bnn(), 16, &DesignKind::all());
            let energy = cmp.normalized_energy(DesignKind::RcAcc);
            let shift_energy = energy.iter().find(|(d, _)| *d == DesignKind::ShiftBnn).unwrap().1;
            assert!(shift_energy < 1.0, "{}: energy {shift_energy}", kind.paper_name());
            let speedup = cmp.speedup_over(DesignKind::RcAcc);
            let shift_speed = speedup.iter().find(|(d, _)| *d == DesignKind::ShiftBnn).unwrap().1;
            assert!(shift_speed >= 1.0, "{}: speedup {shift_speed}", kind.paper_name());
            let eff = cmp.normalized_efficiency(DesignKind::RcAcc);
            let shift_eff = eff.iter().find(|(d, _)| *d == DesignKind::ShiftBnn).unwrap().1;
            assert!(shift_eff > 1.0, "{}: efficiency {shift_eff}", kind.paper_name());
        }
    }

    #[test]
    fn shift_bnn_consumes_less_energy_than_mnshift_acc() {
        // The design-space-exploration result the paper quantifies as a 39% average gap: both
        // designs eliminate ε traffic, but the MN mapping pays for duplicated adder trees and
        // poorer feature-map reuse.
        let mut ratios = Vec::new();
        for kind in ModelKind::all() {
            let cmp = DesignComparison::run(&kind.bnn(), 16, &DesignKind::all());
            let shift = cmp.of(DesignKind::ShiftBnn).energy_mj();
            let mnshift = cmp.of(DesignKind::MnShiftAcc).energy_mj();
            assert!(shift < mnshift, "{}: {shift} vs {mnshift}", kind.paper_name());
            ratios.push(shift / mnshift);
        }
        let avg_reduction = 1.0 - geometric_mean(&ratios);
        assert!(avg_reduction > 0.15, "average reduction vs MNShift-Acc {avg_reduction}");
    }

    #[test]
    fn fc_dominated_models_gain_the_most_speedup() {
        // The paper: B-MLP gains up to 2.6x while conv-dominated B-VGG gains ~1.2x.
        let mlp = DesignComparison::run(&ModelKind::Mlp.bnn(), 16, &DesignKind::all());
        let vgg = DesignComparison::run(&ModelKind::Vgg16.bnn(), 16, &DesignKind::all());
        let s_mlp = mlp.speedup_over(DesignKind::RcAcc);
        let s_vgg = vgg.speedup_over(DesignKind::RcAcc);
        let mlp_speed = s_mlp.iter().find(|(d, _)| *d == DesignKind::ShiftBnn).unwrap().1;
        let vgg_speed = s_vgg.iter().find(|(d, _)| *d == DesignKind::ShiftBnn).unwrap().1;
        assert!(mlp_speed > vgg_speed, "MLP {mlp_speed} vs VGG {vgg_speed}");
    }

    #[test]
    fn shift_bnn_outperforms_the_gpu_in_energy_efficiency() {
        let model = ModelKind::LeNet.bnn();
        let cmp = DesignComparison::run(&model, 16, &DesignKind::all());
        let gpu_eff = cmp.gpu_normalized_efficiency(&model, DesignKind::ShiftBnn);
        assert!(gpu_eff < 1.0, "GPU relative efficiency {gpu_eff}");
    }

    #[test]
    fn compare_all_designs_covers_every_model() {
        let models: Vec<_> = ModelKind::all().iter().map(|k| k.bnn()).collect();
        let cmps = compare_all_designs(&models, 8);
        assert_eq!(cmps.len(), 5);
        assert!(cmps.iter().all(|c| c.evaluations.len() == 4));
    }

    #[test]
    fn geometric_mean_of_identical_values_is_the_value() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "not evaluated")]
    fn missing_design_panics() {
        let cmp = DesignComparison::run(&ModelKind::Mlp.bnn(), 4, &[DesignKind::RcAcc]);
        cmp.of(DesignKind::ShiftBnn);
    }
}
