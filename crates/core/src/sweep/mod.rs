//! The design-space sweep engine behind every figure binary.
//!
//! The paper's evaluation is a grid — designs × models × Monte-Carlo sample counts ×
//! datapath precisions — and every reproduced figure is a *slice* of that grid. This module
//! turns the grid into first-class data:
//!
//! * [`SweepGrid`] enumerates the cross product into independent [`SweepPoint`] jobs with a
//!   stable grid index;
//! * [`run_sweep`] executes the points on a work-stealing pool of scoped threads
//!   ([`pool`]) and aggregates the simulator's [`TrainingRunReport`]s into a [`SweepReport`],
//!   ordered by grid index — *never* by completion order, so a 1-worker run and an N-worker run
//!   serialize to byte-identical JSON;
//! * [`json`] provides the deterministic hand-rolled serializer and parser (`serde` is
//!   unavailable in this offline workspace);
//! * [`summary`] extracts the compact reference-slice baseline (`BENCH_sweep_summary.json`)
//!   that is committed to the repo and regression-checked by CI, in place of the full ~14k-line
//!   report (which stays a CI artifact).
//!
//! The figure/table binaries of `shift-bnn-bench` are thin views over one shared
//! [`SweepReport`] (see [`SweepGrid::paper_figures`]), and `sweep_all` emits the whole grid —
//! with 1-worker vs N-worker wall-clock timings — as `BENCH_sweep.json`.
//!
//! # Example
//!
//! ```
//! use shift_bnn::sweep::{run_sweep, SweepGrid};
//! use bnn_arch::EnergyModel;
//!
//! let grid = SweepGrid::paper_figures();
//! let report = run_sweep(&grid, 4, &EnergyModel::default());
//! let cmp = report.comparison("B-LeNet", 16);
//! let energy = cmp.normalized_energy(shift_bnn::DesignKind::RcAcc);
//! assert_eq!(energy.len(), 4);
//! ```

pub mod json;
pub mod summary;

// The work-stealing pool started here and moved to the crate root when the serving engine
// (`bnn-serve`) became its second client; the old `sweep::pool` path stays valid.
pub use crate::pool;

use crate::compare::DesignComparison;
use crate::designs::DesignKind;
use crate::evaluate::{evaluate_with_precision, DesignEvaluation};
use crate::scalability::{ScalabilityPoint, FIG13_SAMPLE_COUNTS};
use bnn_arch::simulate::TrainingRunReport;
use bnn_arch::EnergyModel;
use bnn_models::zoo::{paper_bnns, paper_variants};
use bnn_models::ModelConfig;
use json::{Json, ToJson};

/// Datapath precision of a sweep point (the Table 1 axis, applied to the simulator's byte
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepPrecision {
    /// 8-bit fixed point.
    Bits8,
    /// 16-bit fixed point — the paper's evaluated datapath.
    Bits16,
    /// 32-bit floating point.
    Bits32,
}

impl SweepPrecision {
    /// The three precisions of the paper's Table 1, in ascending width order.
    pub fn all() -> [SweepPrecision; 3] {
        [SweepPrecision::Bits8, SweepPrecision::Bits16, SweepPrecision::Bits32]
    }

    /// Width in bits.
    pub fn bits(&self) -> u64 {
        match self {
            SweepPrecision::Bits8 => 8,
            SweepPrecision::Bits16 => 16,
            SweepPrecision::Bits32 => 32,
        }
    }

    /// Bytes per value on the datapath.
    pub fn bytes(&self) -> usize {
        (self.bits() / 8) as usize
    }
}

/// The cross product a sweep enumerates.
///
/// Every axis combination is a valid simulator input — for non-Bayesian models the sample
/// axis acts as a parallel batch (no ε is drawn); the Fig. 2 DNN baselines simply select the
/// S = 1 slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Accelerator designs, in the order the paper's figures list them.
    pub designs: Vec<DesignKind>,
    /// Model configurations (Bayesian and/or DNN variants).
    pub models: Vec<ModelConfig>,
    /// Monte-Carlo sample counts `S`, ascending.
    pub sample_counts: Vec<usize>,
    /// Datapath precisions.
    pub precisions: Vec<SweepPrecision>,
}

impl SweepGrid {
    /// The full paper grid of the ISSUE's tentpole: 4 designs × 5 Bayesian model families ×
    /// the Fig. 13 sample counts × the Table 1 precisions — 360 points.
    pub fn paper_full() -> SweepGrid {
        SweepGrid {
            designs: DesignKind::all().to_vec(),
            models: paper_bnns(),
            sample_counts: FIG13_SAMPLE_COUNTS.to_vec(),
            precisions: SweepPrecision::all().to_vec(),
        }
    }

    /// The union grid the figure binaries consume: 4 designs × 10 model variants (5 BNN +
    /// 5 DNN) × every sample count any figure uses × the 16-bit paper datapath.
    ///
    /// Every `fig*`/`table*` binary selects its slice of one report over this grid.
    pub fn paper_figures() -> SweepGrid {
        SweepGrid {
            designs: DesignKind::all().to_vec(),
            models: paper_variants(),
            sample_counts: vec![1, 4, 8, 16, 24, 32, 64, 128],
            precisions: vec![SweepPrecision::Bits16],
        }
    }

    /// A reduced grid for CI smoke runs: 4 designs × 5 BNN families × S ∈ {4, 16} × 16-bit.
    pub fn reduced() -> SweepGrid {
        SweepGrid {
            designs: DesignKind::all().to_vec(),
            models: paper_bnns(),
            sample_counts: vec![4, 16],
            precisions: vec![SweepPrecision::Bits16],
        }
    }

    /// Enumerates the grid into [`SweepPoint`]s with stable indices.
    ///
    /// The enumeration order — model-major, then samples, then precision, then design — is
    /// part of the JSON contract: record `i` of a [`SweepReport`] is always point `i` of its
    /// grid, whatever the worker count.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        for model in &self.models {
            for &samples in &self.sample_counts {
                for &precision in &self.precisions {
                    for &design in &self.designs {
                        points.push(SweepPoint {
                            index: points.len(),
                            design,
                            model: model.clone(),
                            samples,
                            precision,
                        });
                    }
                }
            }
        }
        points
    }

    /// Number of points the grid enumerates to: the product of the four axis lengths.
    pub fn len(&self) -> usize {
        self.models.len() * self.sample_counts.len() * self.precisions.len() * self.designs.len()
    }

    /// Whether the grid enumerates to zero points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ToJson for SweepGrid {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "designs",
                Json::Array(self.designs.iter().map(|d| Json::Str(d.name().into())).collect()),
            ),
            (
                "models",
                Json::Array(self.models.iter().map(|m| Json::Str(m.name.clone())).collect()),
            ),
            (
                "sample_counts",
                Json::Array(self.sample_counts.iter().map(|&s| Json::UInt(s as u64)).collect()),
            ),
            (
                "precision_bits",
                Json::Array(self.precisions.iter().map(|p| Json::UInt(p.bits())).collect()),
            ),
            ("points", Json::UInt(self.len() as u64)),
        ])
    }
}

/// One independent job of a sweep: a (design, model, samples, precision) tuple plus its grid
/// index.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in the grid enumeration (see [`SweepGrid::points`]).
    pub index: usize,
    /// The accelerator design.
    pub design: DesignKind,
    /// The model variant.
    pub model: ModelConfig,
    /// Monte-Carlo sample count `S`.
    pub samples: usize,
    /// Datapath precision.
    pub precision: SweepPrecision,
}

impl SweepPoint {
    /// Runs the point through the analytic simulator.
    pub fn run(&self, energy: &EnergyModel) -> TrainingRunReport {
        evaluate_with_precision(
            self.design,
            &self.model,
            self.samples,
            self.precision.bytes(),
            energy,
        )
        .report
    }
}

/// A sweep point together with its simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// The grid point.
    pub point: SweepPoint,
    /// The simulator's run-level report for that point.
    pub report: TrainingRunReport,
}

impl ToJson for &SweepRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("index", Json::UInt(self.point.index as u64)),
            ("design", Json::Str(self.point.design.name().into())),
            ("model", Json::Str(self.point.model.name.clone())),
            ("bayesian", Json::Bool(self.point.model.bayesian)),
            ("samples", Json::UInt(self.point.samples as u64)),
            ("precision_bits", Json::UInt(self.point.precision.bits())),
            ("report", self.report.to_json()),
        ])
    }
}

/// The aggregated result of one sweep: every record, in grid-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The grid that was swept.
    pub grid: SweepGrid,
    /// One record per grid point, ordered by [`SweepPoint::index`].
    pub records: Vec<SweepRecord>,
}

impl SweepReport {
    /// Finds the record of one grid point, or `None` when the grid did not include it.
    pub fn record(
        &self,
        design: DesignKind,
        model: &str,
        samples: usize,
        precision: SweepPrecision,
    ) -> Option<&SweepRecord> {
        self.records.iter().find(|r| {
            r.point.design == design
                && r.point.model.name == model
                && r.point.samples == samples
                && r.point.precision == precision
        })
    }

    /// The [`DesignEvaluation`] of one 16-bit grid point.
    ///
    /// # Panics
    ///
    /// Panics when the grid did not cover the requested point.
    pub fn evaluation(&self, design: DesignKind, model: &str, samples: usize) -> DesignEvaluation {
        let record =
            self.record(design, model, samples, SweepPrecision::Bits16).unwrap_or_else(|| {
                panic!("sweep does not cover {} / {model} / S={samples}", design.name())
            });
        DesignEvaluation { design, report: record.report.clone() }
    }

    /// Assembles the [`DesignComparison`] of one (model, samples) slice — the structure Figs.
    /// 10, 11, 12 and 14 are views of — from the 16-bit records, in the grid's design order.
    ///
    /// # Panics
    ///
    /// Panics when the grid did not cover every design at the requested point.
    pub fn comparison(&self, model: &str, samples: usize) -> DesignComparison {
        let evaluations: Vec<DesignEvaluation> =
            self.grid.designs.iter().map(|&d| self.evaluation(d, model, samples)).collect();
        DesignComparison { model: model.to_string(), samples, evaluations }
    }

    /// Derives the Fig. 13 scalability points of one model from the 16-bit records.
    ///
    /// # Panics
    ///
    /// Panics when the grid did not cover the four designs at every requested sample count.
    pub fn scalability(&self, model: &str, sample_counts: &[usize]) -> Vec<ScalabilityPoint> {
        sample_counts
            .iter()
            .map(|&samples| {
                let report = |d| self.evaluation(d, model, samples);
                let rc = report(DesignKind::RcAcc);
                let shift = report(DesignKind::ShiftBnn);
                let mn = report(DesignKind::MnAcc);
                let mnshift = report(DesignKind::MnShiftAcc);
                ScalabilityPoint {
                    samples,
                    shift_energy_reduction: 1.0 - shift.energy_mj() / rc.energy_mj(),
                    mnshift_energy_reduction: 1.0 - mnshift.energy_mj() / mn.energy_mj(),
                    shift_efficiency: shift.gops_per_watt(),
                    mnshift_efficiency: mnshift.gops_per_watt(),
                }
            })
            .collect()
    }

    /// Serializes the report; both runs of the determinism contract produce this value
    /// byte-identically.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str("shift-bnn-sweep/v1".into())),
            ("grid", self.grid.to_json()),
            ("records", Json::array_of(self.records.iter())),
        ])
    }

    /// Pretty-printed [`SweepReport::to_json`].
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }
}

/// Executes every point of `grid` on `workers` work-stealing threads and aggregates the
/// reports in grid order.
pub fn run_sweep(grid: &SweepGrid, workers: usize, energy: &EnergyModel) -> SweepReport {
    let points = grid.points();
    let reports = pool::run_indexed(points.len(), workers, |i| points[i].run(energy));
    let records = points
        .into_iter()
        .zip(reports)
        .map(|(point, report)| SweepRecord { point, report })
        .collect();
    SweepReport { grid: grid.clone(), records }
}

/// The shared sweep every figure binary views: [`SweepGrid::paper_figures`] under the default
/// energy model, executed on [`pool::default_workers`] threads.
pub fn paper_sweep() -> SweepReport {
    run_sweep(&SweepGrid::paper_figures(), pool::default_workers(), &EnergyModel::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use bnn_models::ModelKind;

    fn small_grid() -> SweepGrid {
        SweepGrid {
            designs: DesignKind::all().to_vec(),
            models: vec![ModelKind::Mlp.bnn(), ModelKind::LeNet.bnn()],
            sample_counts: vec![4, 16],
            precisions: vec![SweepPrecision::Bits16],
        }
    }

    #[test]
    fn enumeration_indices_are_dense_and_ordered() {
        let grid = SweepGrid::paper_figures();
        let points = grid.points();
        assert_eq!(points.len(), grid.len());
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // 10 model variants × 8 sample counts × 4 designs × 1 precision — a full factorial.
        assert_eq!(points.len(), 10 * 8 * 4);
    }

    #[test]
    fn non_bayesian_models_cover_the_full_sample_axis() {
        // The S axis is a parallel batch for a DNN (no ε drawn); every combination must be
        // enumerated so e.g. `sweep_samples` keeps working on DNN configs.
        let grid = SweepGrid {
            designs: vec![DesignKind::MnAcc],
            models: vec![ModelKind::Mlp.dnn()],
            sample_counts: vec![1, 8, 32],
            precisions: vec![SweepPrecision::Bits16],
        };
        let points = grid.points();
        assert_eq!(points.len(), grid.len());
        assert_eq!(points.iter().map(|p| p.samples).collect::<Vec<_>>(), vec![1, 8, 32]);
        let report = run_sweep(&grid, 2, &EnergyModel::default());
        assert_eq!(report.records[1].report.dram_traffic.epsilon, 0);
        let dnn_points = crate::scalability::sweep_samples(&ModelKind::Mlp.dnn(), &[1, 8]);
        assert_eq!(dnn_points.len(), 2);
    }

    #[test]
    fn sweep_records_match_direct_evaluation() {
        let report = run_sweep(&small_grid(), 2, &EnergyModel::default());
        let direct = evaluate(DesignKind::ShiftBnn, &ModelKind::LeNet.bnn(), 16);
        let swept = report.evaluation(DesignKind::ShiftBnn, "B-LeNet", 16);
        assert_eq!(swept.report, direct.report);
    }

    #[test]
    fn comparison_slice_behaves_like_design_comparison_run() {
        let report = run_sweep(&small_grid(), 3, &EnergyModel::default());
        let via_sweep = report.comparison("B-MLP", 16);
        let direct = DesignComparison::run(&ModelKind::Mlp.bnn(), 16, &DesignKind::all());
        assert_eq!(via_sweep, direct);
    }

    #[test]
    fn scalability_slice_matches_sweep_samples() {
        let grid = SweepGrid { models: vec![ModelKind::LeNet.bnn()], ..small_grid() };
        let report = run_sweep(&grid, 2, &EnergyModel::default());
        let via_sweep = report.scalability("B-LeNet", &[4, 16]);
        let direct = crate::scalability::sweep_samples(&ModelKind::LeNet.bnn(), &[4, 16]);
        assert_eq!(via_sweep, direct);
    }

    #[test]
    fn precision_axis_scales_dram_bytes() {
        let grid = SweepGrid {
            designs: vec![DesignKind::RcAcc],
            models: vec![ModelKind::Mlp.bnn()],
            sample_counts: vec![8],
            precisions: SweepPrecision::all().to_vec(),
        };
        let report = run_sweep(&grid, 1, &EnergyModel::default());
        let bytes = |p| report.record(DesignKind::RcAcc, "B-MLP", 8, p).unwrap().report.dram_bytes;
        assert_eq!(bytes(SweepPrecision::Bits8) * 2, bytes(SweepPrecision::Bits16));
        assert_eq!(bytes(SweepPrecision::Bits16) * 2, bytes(SweepPrecision::Bits32));
    }

    #[test]
    fn missing_point_is_a_clean_panic() {
        let report = run_sweep(&small_grid(), 1, &EnergyModel::default());
        assert!(report.record(DesignKind::ShiftBnn, "B-VGG", 16, SweepPrecision::Bits16).is_none());
        let panicked =
            std::panic::catch_unwind(|| report.evaluation(DesignKind::ShiftBnn, "B-VGG", 16));
        assert!(panicked.is_err());
    }

    #[test]
    fn paper_full_grid_has_the_issue_dimensions() {
        let grid = SweepGrid::paper_full();
        assert_eq!(grid.len(), 4 * 5 * FIG13_SAMPLE_COUNTS.len() * 3);
        assert!(grid.models.iter().all(|m| m.bayesian));
    }
}
