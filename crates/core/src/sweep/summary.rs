//! Compact, fully deterministic headline summary of a [`SweepReport`].
//!
//! The full sweep report is a ~14k-line JSON artifact that used to be committed to the repo
//! and churned on every sweep-adjacent change. What actually needs to live in git is the
//! *regression baseline*: a small set of headline scalars that (a) are a pure function of the
//! simulator — no wall clocks, no worker counts — and (b) pin every figure's inputs, because
//! each figure normalizes records of the same reference slice against each other.
//!
//! [`SweepSummary`] is that baseline: for every (design × model) pair of the grid, the
//! run-level scalars at the reference point S = [`REFERENCE_SAMPLES`], 16-bit — the slice all
//! headline figures (3, 10, 11, 12, 14) are computed from, and one both the full paper grid
//! and the reduced CI grid contain. Because the summary only reads that shared slice, a
//! reduced CI run and a nightly full-grid run produce **byte-identical** summaries, so the
//! `bench_regression` checker can compare either against the committed
//! `BENCH_sweep_summary.json`. The full report remains available as a CI artifact.

use super::json::{Json, ToJson};
use super::{SweepPrecision, SweepReport};

/// The Monte-Carlo sample count of the summary's reference slice (the figures' headline S).
pub const REFERENCE_SAMPLES: usize = 16;

/// The datapath precision of the summary's reference slice (the paper's evaluated 16-bit).
pub const REFERENCE_PRECISION: SweepPrecision = SweepPrecision::Bits16;

/// The headline scalars of one (design, model) pair at the reference slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRecord {
    /// Design name (e.g. `"Shift-BNN"`).
    pub design: String,
    /// Model name (e.g. `"B-LeNet"`).
    pub model: String,
    /// Training-iteration latency in seconds.
    pub latency_s: f64,
    /// Total energy in millijoules.
    pub energy_mj: f64,
    /// Off-chip traffic in bytes.
    pub dram_bytes: u64,
    /// Energy efficiency in GOPS/W.
    pub gops_per_watt: f64,
}

impl ToJson for &SummaryRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", Json::Str(self.design.clone())),
            ("model", Json::Str(self.model.clone())),
            ("latency_s", Json::Float(self.latency_s)),
            ("energy_mj", Json::Float(self.energy_mj)),
            ("dram_bytes", Json::UInt(self.dram_bytes)),
            ("gops_per_watt", Json::Float(self.gops_per_watt)),
        ])
    }
}

/// The committed regression baseline: every (design × model) pair's headline scalars at the
/// reference slice, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// One record per (model × design) pair, model-major in grid order.
    pub records: Vec<SummaryRecord>,
}

impl SweepSummary {
    /// Extracts the reference-slice summary from a sweep report.
    ///
    /// # Panics
    ///
    /// Panics when the report's grid does not cover the reference point
    /// (S = [`REFERENCE_SAMPLES`] at [`REFERENCE_PRECISION`]) for some (design, model) pair —
    /// every grid the repo sweeps (paper full, figure union, reduced CI) covers it.
    pub fn from_report(report: &SweepReport) -> SweepSummary {
        let mut records = Vec::new();
        for model in &report.grid.models {
            for &design in &report.grid.designs {
                let record = report
                    .record(design, &model.name, REFERENCE_SAMPLES, REFERENCE_PRECISION)
                    .unwrap_or_else(|| {
                        panic!(
                            "sweep grid lacks the summary reference point {} / {} / S={} / 16-bit",
                            design.name(),
                            model.name,
                            REFERENCE_SAMPLES
                        )
                    });
                records.push(SummaryRecord {
                    design: design.name().to_string(),
                    model: model.name.clone(),
                    latency_s: record.report.latency_s,
                    energy_mj: record.report.energy.total_mj(),
                    dram_bytes: record.report.dram_bytes,
                    gops_per_watt: record.report.gops_per_watt(),
                });
            }
        }
        SweepSummary { records }
    }

    /// Serializes the summary. The output is a pure function of the simulator's reference
    /// slice — identical across worker counts, grid reductions, and machines.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str("shift-bnn-sweep-summary/v1".into())),
            (
                "reference",
                Json::obj([
                    ("samples", Json::UInt(REFERENCE_SAMPLES as u64)),
                    ("precision_bits", Json::UInt(REFERENCE_PRECISION.bits())),
                ]),
            ),
            ("records", Json::array_of(self.records.iter())),
        ])
    }

    /// Pretty-printed [`SweepSummary::to_json`] with a trailing newline (the committed form).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty() + "\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::DesignKind;
    use crate::sweep::{run_sweep, SweepGrid};
    use bnn_arch::EnergyModel;

    #[test]
    fn reduced_and_full_grids_summarize_identically() {
        let energy = EnergyModel::default();
        let reduced = run_sweep(&SweepGrid::reduced(), 2, &energy);
        let full = run_sweep(&SweepGrid::paper_full(), 3, &energy);
        let a = SweepSummary::from_report(&reduced).to_json_string();
        let b = SweepSummary::from_report(&full).to_json_string();
        assert_eq!(a, b, "the summary must only read the shared reference slice");
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn summary_covers_every_design_model_pair_in_grid_order() {
        let report = run_sweep(&SweepGrid::reduced(), 1, &EnergyModel::default());
        let summary = SweepSummary::from_report(&report);
        assert_eq!(summary.records.len(), 4 * 5);
        assert_eq!(summary.records[0].model, "B-MLP");
        assert_eq!(summary.records[0].design, "MN-Acc");
        assert_eq!(summary.records[4].model, "B-LeNet");
        for record in &summary.records {
            assert!(record.energy_mj > 0.0 && record.latency_s > 0.0);
        }
    }

    #[test]
    fn missing_reference_point_panics_with_context() {
        let grid = SweepGrid {
            designs: DesignKind::all().to_vec(),
            sample_counts: vec![4], // no S = 16
            ..SweepGrid::reduced()
        };
        let report = run_sweep(&grid, 1, &EnergyModel::default());
        let err = std::panic::catch_unwind(|| SweepSummary::from_report(&report));
        assert!(err.is_err());
    }
}
