//! Hand-rolled JSON serialization (and parsing) for sweep and serving reports.
//!
//! The container this workspace builds in has no crates.io access, so `serde`/`serde_json` are
//! unavailable; this module provides the small, deterministic subset the sweep engine needs:
//! a [`Json`] value tree, compact and pretty writers, the [`ToJson`] conversion trait, and —
//! since the CI bench-regression checker has to *read* committed baseline artifacts — a
//! recursive-descent parser ([`Json::parse`]) with path accessors.
//!
//! Determinism is the design constraint — the sweep engine's acceptance test compares the JSON
//! of a 1-worker run against an N-worker run *byte for byte*:
//!
//! * objects keep their insertion order (no hash maps anywhere);
//! * floats are written with Rust's shortest-round-trip `Display`, which is a pure function of
//!   the `f64` bits; non-finite floats become `null` (JSON has no NaN/Infinity);
//! * integers are kept as integers rather than routed through `f64`, so `u64` counts above
//!   2^53 (DRAM traffic of a VGG sweep, for instance) never lose precision.

use std::fmt::Write as _;

/// FNV-1a (64-bit) hash of a byte stream — the workspace's single implementation of the
/// function behind every committed fingerprint and the checkpoint container checksum.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// [`fnv1a`] rendered as 16 lowercase hex characters — the shared fingerprint format for
/// committed baselines: response bytes (`bnn-serve`), kernel output bits (`shift-bnn-bench`)
/// and checkpoint bytes (`bnn-store`) all pin their content with this same function.
pub fn fnv1a_hex(bytes: impl IntoIterator<Item = u8>) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// A JSON value with deterministic serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// A finite float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting every item with [`ToJson`].
    pub fn array_of<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Array(items.into_iter().map(|i| i.to_json()).collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation, trailing newline omitted.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Parses a JSON document (one value with optional surrounding whitespace).
    ///
    /// The grammar is RFC 8259 minus the corners this repo never produces: numbers parse into
    /// [`Json::UInt`] / [`Json::Int`] when they are integral and fit (preserving exactness
    /// above 2^53), and into [`Json::Float`] otherwise; strings accept every standard escape
    /// including `\uXXXX` surrogate pairs.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with a byte offset on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks a key up in an object (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `/`-separated path of object keys and array indices, e.g. `"records/3/model"`.
    pub fn pointer(&self, path: &str) -> Option<&Json> {
        let mut current = self;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            current = match current {
                Json::Object(_) => current.get(segment)?,
                Json::Array(items) => items.get(segment.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(current)
    }

    /// The numeric value of a `UInt`/`Int`/`Float` node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The exact value of a non-negative integer node.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The string value of a `Str` node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of an `Array` node.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs of an `Object` node.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

/// Shared open/separate/close logic for arrays and objects.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

/// Writes a float using the shortest representation that round-trips (Rust's `Display` for
/// `f64`), which is deterministic for identical bit patterns. Integral values keep a `.0`
/// suffix so the parser can tell a `Float` from an integer — without it, `parse(write(x))`
/// would silently reclassify e.g. a speedup of exactly 1.0 as `UInt(1)`. Non-finite values
/// become `null` (JSON has no NaN/Infinity).
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes a string with the JSON escapes required by RFC 8259 (quotes, backslash, control
/// characters); everything else passes through as UTF-8.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.consume_literal("null", Json::Null),
            Some(b't') => self.consume_literal("true", Json::Bool(true)),
            Some(b'f') => self.consume_literal("false", Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("peeked a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            // Keep integers exact (the serializer writes u64 counts above 2^53); fall back to
            // f64 only when the literal overflows both integer types.
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Float(v)),
            Err(_) => Err(JsonParseError { message: "malformed number".into(), offset: start }),
        }
    }
}

/// Conversion into a [`Json`] value.
///
/// Implemented here (rather than in `bnn-arch`) for the report types of the simulator, so the
/// simulator crate stays serialization-agnostic while every report stays JSON-emittable.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for bnn_arch::EnergyBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dram_mj", Json::Float(self.dram_mj)),
            ("sram_mj", Json::Float(self.sram_mj)),
            ("compute_mj", Json::Float(self.compute_mj)),
            ("grng_mj", Json::Float(self.grng_mj)),
            ("static_mj", Json::Float(self.static_mj)),
            ("total_mj", Json::Float(self.total_mj())),
        ])
    }
}

impl ToJson for bnn_arch::TrafficByOperand {
    fn to_json(&self) -> Json {
        Json::obj([
            ("weights", Json::UInt(self.weights)),
            ("epsilon", Json::UInt(self.epsilon)),
            ("features", Json::UInt(self.features)),
            ("total", Json::UInt(self.total())),
        ])
    }
}

impl ToJson for bnn_arch::FootprintBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("weights_bytes", Json::UInt(self.weights_bytes)),
            ("epsilon_bytes", Json::UInt(self.epsilon_bytes)),
            ("features_bytes", Json::UInt(self.features_bytes)),
            ("total_bytes", Json::UInt(self.total_bytes())),
        ])
    }
}

impl ToJson for bnn_arch::simulate::TrainingRunReport {
    /// Run-level summary of a training-run report (per-layer detail is deliberately omitted —
    /// a full paper sweep holds hundreds of reports and the figures consume only run totals).
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", Json::Str(self.design.clone())),
            ("model", Json::Str(self.model.clone())),
            ("samples", Json::UInt(self.samples as u64)),
            ("latency_cycles", Json::UInt(self.latency_cycles)),
            ("latency_s", Json::Float(self.latency_s)),
            ("total_macs", Json::UInt(self.total_macs)),
            ("gops", Json::Float(self.gops())),
            ("average_power_w", Json::Float(self.average_power_w())),
            ("gops_per_watt", Json::Float(self.gops_per_watt())),
            ("energy", self.energy.to_json()),
            ("dram_traffic", self.dram_traffic.to_json()),
            ("dram_bytes", Json::UInt(self.dram_bytes)),
            ("footprint", self.footprint.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_hex_matches_the_reference_vectors() {
        // FNV-1a 64 test vectors: empty input is the offset basis; "a" is well known.
        assert_eq!(fnv1a_hex([]), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(*b"a"), "af63dc4c8601ec8c");
        assert_eq!(fnv1a_hex(b"abc".iter().copied()).len(), 16);
    }

    #[test]
    fn scalars_serialize_canonically() {
        assert_eq!(Json::Null.to_compact(), "null");
        assert_eq!(Json::Bool(true).to_compact(), "true");
        assert_eq!(Json::UInt(u64::MAX).to_compact(), "18446744073709551615");
        assert_eq!(Json::Int(-7).to_compact(), "-7");
        assert_eq!(Json::Float(0.1).to_compact(), "0.1");
        assert_eq!(Json::Float(1.0).to_compact(), "1.0");
        assert_eq!(Json::Float(-3.0).to_compact(), "-3.0");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\n\u{1}".into()).to_compact(), "\"a\\\"b\\\\c\\n\\u0001\"");
        assert_eq!(Json::Str("tab\there".into()).to_compact(), r#""tab\there""#);
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj([("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(j.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_printing_indents_nested_structures() {
        let j = Json::obj([("xs", Json::Array(vec![Json::UInt(1), Json::UInt(2)]))]);
        assert_eq!(j.to_pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(Json::Array(vec![]).to_pretty(), "[]");
    }

    #[test]
    fn u64_counts_above_2_pow_53_round_trip_exactly() {
        let big = (1u64 << 53) + 1;
        assert_eq!(Json::UInt(big).to_compact(), big.to_string());
    }

    #[test]
    fn parse_round_trips_scalars_and_containers() {
        let value = Json::obj([
            ("uint", Json::UInt(u64::MAX)),
            ("int", Json::Int(-42)),
            ("float", Json::Float(0.125)),
            ("integral_float", Json::Float(2.0)),
            ("str", Json::Str("a\"b\\c\nd\te".into())),
            ("null", Json::Null),
            ("flags", Json::Array(vec![Json::Bool(true), Json::Bool(false)])),
            ("empty_obj", Json::obj::<String>([])),
            ("empty_arr", Json::Array(vec![])),
        ]);
        for text in [value.to_compact(), value.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), value);
        }
    }

    #[test]
    fn parse_keeps_big_integers_exact_and_classifies_numbers() {
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Float(-0.5));
        // Integral but beyond u64/i64: falls back to float rather than failing.
        assert!(matches!(Json::parse("99999999999999999999999").unwrap(), Json::Float(_)));
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate must be rejected");
    }

    #[test]
    fn parse_rejects_malformed_documents_with_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "{\"a\" 1}"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "offset in range for {bad:?}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"grid":{"points":360},"records":[{"model":"B-MLP","v":1.5}]}"#)
            .unwrap();
        assert_eq!(doc.pointer("grid/points").and_then(Json::as_u64), Some(360));
        assert_eq!(doc.pointer("records/0/model").and_then(Json::as_str), Some("B-MLP"));
        assert_eq!(doc.pointer("records/0/v").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.pointer("records/1/model"), None);
        assert_eq!(doc.pointer("missing"), None);
        assert_eq!(doc.get("records").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert!(doc.as_object().is_some());
    }

    #[test]
    fn serializer_output_always_reparses_identically() {
        // The contract bench_regression relies on: parse(write(x)) == x for every value the
        // repo emits (non-finite floats are written as null, so they are excluded by design).
        use bnn_arch::simulate::simulate_training;
        use bnn_arch::{AcceleratorConfig, EnergyModel};
        use bnn_models::ModelKind;
        let report = simulate_training(
            &AcceleratorConfig::default(),
            &ModelKind::LeNet.bnn(),
            8,
            &EnergyModel::default(),
        );
        let json = report.to_json();
        assert_eq!(Json::parse(&json.to_pretty()).unwrap(), json);
    }

    #[test]
    fn training_run_report_emits_run_level_fields() {
        use bnn_arch::simulate::simulate_training;
        use bnn_arch::{AcceleratorConfig, EnergyModel};
        use bnn_models::ModelKind;

        let report = simulate_training(
            &AcceleratorConfig::default(),
            &ModelKind::Mlp.bnn(),
            4,
            &EnergyModel::default(),
        );
        let json = report.to_json().to_compact();
        assert!(json.contains(r#""model":"B-MLP""#));
        assert!(json.contains(r#""samples":4"#));
        assert!(json.contains(r#""dram_traffic":{"weights":"#));
        // Serialization is a pure function of the report.
        assert_eq!(json, report.to_json().to_compact());
    }
}
