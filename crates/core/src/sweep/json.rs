//! Hand-rolled JSON serialization for sweep reports.
//!
//! The container this workspace builds in has no crates.io access, so `serde`/`serde_json` are
//! unavailable; this module provides the small, deterministic subset the sweep engine needs:
//! a [`Json`] value tree, compact and pretty writers, and the [`ToJson`] conversion trait.
//!
//! Determinism is the design constraint — the sweep engine's acceptance test compares the JSON
//! of a 1-worker run against an N-worker run *byte for byte*:
//!
//! * objects keep their insertion order (no hash maps anywhere);
//! * floats are written with Rust's shortest-round-trip `Display`, which is a pure function of
//!   the `f64` bits; non-finite floats become `null` (JSON has no NaN/Infinity);
//! * integers are kept as integers rather than routed through `f64`, so `u64` counts above
//!   2^53 (DRAM traffic of a VGG sweep, for instance) never lose precision.

use std::fmt::Write as _;

/// A JSON value with deterministic serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// A finite float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting every item with [`ToJson`].
    pub fn array_of<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Array(items.into_iter().map(|i| i.to_json()).collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation, trailing newline omitted.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

/// Shared open/separate/close logic for arrays and objects.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

/// Writes a float using the shortest representation that round-trips (Rust's `Display` for
/// `f64`), which is deterministic for identical bit patterns. Non-finite values become `null`.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Writes a string with the JSON escapes required by RFC 8259 (quotes, backslash, control
/// characters); everything else passes through as UTF-8.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
///
/// Implemented here (rather than in `bnn-arch`) for the report types of the simulator, so the
/// simulator crate stays serialization-agnostic while every report stays JSON-emittable.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for bnn_arch::EnergyBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dram_mj", Json::Float(self.dram_mj)),
            ("sram_mj", Json::Float(self.sram_mj)),
            ("compute_mj", Json::Float(self.compute_mj)),
            ("grng_mj", Json::Float(self.grng_mj)),
            ("static_mj", Json::Float(self.static_mj)),
            ("total_mj", Json::Float(self.total_mj())),
        ])
    }
}

impl ToJson for bnn_arch::TrafficByOperand {
    fn to_json(&self) -> Json {
        Json::obj([
            ("weights", Json::UInt(self.weights)),
            ("epsilon", Json::UInt(self.epsilon)),
            ("features", Json::UInt(self.features)),
            ("total", Json::UInt(self.total())),
        ])
    }
}

impl ToJson for bnn_arch::FootprintBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("weights_bytes", Json::UInt(self.weights_bytes)),
            ("epsilon_bytes", Json::UInt(self.epsilon_bytes)),
            ("features_bytes", Json::UInt(self.features_bytes)),
            ("total_bytes", Json::UInt(self.total_bytes())),
        ])
    }
}

impl ToJson for bnn_arch::simulate::TrainingRunReport {
    /// Run-level summary of a training-run report (per-layer detail is deliberately omitted —
    /// a full paper sweep holds hundreds of reports and the figures consume only run totals).
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", Json::Str(self.design.clone())),
            ("model", Json::Str(self.model.clone())),
            ("samples", Json::UInt(self.samples as u64)),
            ("latency_cycles", Json::UInt(self.latency_cycles)),
            ("latency_s", Json::Float(self.latency_s)),
            ("total_macs", Json::UInt(self.total_macs)),
            ("gops", Json::Float(self.gops())),
            ("average_power_w", Json::Float(self.average_power_w())),
            ("gops_per_watt", Json::Float(self.gops_per_watt())),
            ("energy", self.energy.to_json()),
            ("dram_traffic", self.dram_traffic.to_json()),
            ("dram_bytes", Json::UInt(self.dram_bytes)),
            ("footprint", self.footprint.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize_canonically() {
        assert_eq!(Json::Null.to_compact(), "null");
        assert_eq!(Json::Bool(true).to_compact(), "true");
        assert_eq!(Json::UInt(u64::MAX).to_compact(), "18446744073709551615");
        assert_eq!(Json::Int(-7).to_compact(), "-7");
        assert_eq!(Json::Float(0.1).to_compact(), "0.1");
        assert_eq!(Json::Float(1.0).to_compact(), "1");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\n\u{1}".into()).to_compact(), "\"a\\\"b\\\\c\\n\\u0001\"");
        assert_eq!(Json::Str("tab\there".into()).to_compact(), r#""tab\there""#);
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj([("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(j.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_printing_indents_nested_structures() {
        let j = Json::obj([("xs", Json::Array(vec![Json::UInt(1), Json::UInt(2)]))]);
        assert_eq!(j.to_pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(Json::Array(vec![]).to_pretty(), "[]");
    }

    #[test]
    fn u64_counts_above_2_pow_53_round_trip_exactly() {
        let big = (1u64 << 53) + 1;
        assert_eq!(Json::UInt(big).to_compact(), big.to_string());
    }

    #[test]
    fn training_run_report_emits_run_level_fields() {
        use bnn_arch::simulate::simulate_training;
        use bnn_arch::{AcceleratorConfig, EnergyModel};
        use bnn_models::ModelKind;

        let report = simulate_training(
            &AcceleratorConfig::default(),
            &ModelKind::Mlp.bnn(),
            4,
            &EnergyModel::default(),
        );
        let json = report.to_json().to_compact();
        assert!(json.contains(r#""model":"B-MLP""#));
        assert!(json.contains(r#""samples":4"#));
        assert!(json.contains(r#""dram_traffic":{"weights":"#));
        // Serialization is a pure function of the report.
        assert_eq!(json, report.to_json().to_compact());
    }
}
