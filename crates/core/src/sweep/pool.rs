//! A small work-stealing pool of scoped `std::thread` workers.
//!
//! The container this workspace builds in has no crates.io access (no `rayon`, no
//! `crossbeam`), so the sweep engine brings its own scheduler. It is deliberately tiny:
//!
//! * jobs are the indices `0..jobs` of a known-size batch — exactly what a design-space grid
//!   enumeration produces;
//! * every worker owns a deque seeded with a contiguous slice of the index space and pops work
//!   from its front; an idle worker *steals* the back half of the fullest victim's deque, so an
//!   unlucky worker stuck with the expensive B-VGG points sheds load to the ones that drew
//!   B-MLP;
//! * results are collected per worker as `(index, value)` pairs and merged by index, so the
//!   output order is the *grid* order regardless of which worker finished what when — the
//!   property the sweep determinism test pins down.
//!
//! Workers are `std::thread::scope` threads: they may borrow the job closure (and everything it
//! captures) from the caller's stack, and a panicking job propagates to the caller on join.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `job(i)` for every `i in 0..jobs` on `workers` threads and returns the results in
/// index order.
///
/// `workers` is clamped to `1..=jobs` (a single worker runs the batch inline on the calling
/// thread). The output at position `i` is `job(i)` — completion order never leaks into the
/// result, which is what makes sweep reports byte-identical across worker counts.
///
/// # Panics
///
/// Propagates the first panic raised by any job.
pub fn run_indexed<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs);
    if workers == 1 {
        return (0..jobs).map(job).collect();
    }

    // Seed each worker's deque with a contiguous slice of the index space; stealing rebalances
    // from there. Striding (round-robin) would balance statically but destroy the locality of
    // neighbouring grid points, and stealing makes static balance unnecessary anyway.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = jobs * w / workers;
            let hi = jobs * (w + 1) / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let mut results: Vec<Option<T>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);
    let slots = Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let job = &job;
            let slots = &slots;
            scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                while let Some(index) = next_job(queues, w) {
                    local.push((index, job(index)));
                }
                let mut slots = slots.lock().unwrap();
                for (index, value) in local {
                    slots[index] = Some(value);
                }
            });
        }
    });

    results.into_iter().map(|v| v.expect("every job index produced a result")).collect()
}

/// Pops the next index for worker `w`: front of its own deque, else steal from a victim.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(index) = queues[w].lock().unwrap().pop_front() {
        return Some(index);
    }
    steal_into(queues, w)
}

/// Steals the back half of the fullest other deque into worker `w`'s deque and returns the
/// first stolen index, or `None` when every deque is empty (the batch is done).
fn steal_into(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    loop {
        // Pick the victim with the most queued work. Lengths are read without holding more
        // than one lock at a time; a stale read just means another stealing round.
        let victim = (0..queues.len())
            .filter(|&v| v != w)
            .map(|v| (v, queues[v].lock().unwrap().len()))
            .max_by_key(|&(_, len)| len)
            .filter(|&(_, len)| len > 0);
        let Some((victim, _)) = victim else {
            return None;
        };
        let stolen: Vec<usize> = {
            let mut q = queues[victim].lock().unwrap();
            let keep = q.len() / 2;
            q.split_off(keep).into()
        };
        // The victim may have drained between the length read and the lock; try again.
        if stolen.is_empty() {
            continue;
        }
        let mut own = queues[w].lock().unwrap();
        own.extend(stolen);
        return own.pop_front();
    }
}

/// The worker count the sweep engine uses by default: the machine's available parallelism,
/// capped at 8 (the paper grid has few hundred points; more threads only add contention).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "workers {workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let runs: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(100, 4, |i| runs[i].fetch_add(1, Ordering::SeqCst));
        assert!(runs.iter().all(|r| r.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_job_costs_still_complete_in_order() {
        // The first worker's contiguous slice is artificially expensive; stealing redistributes
        // it, and the merged output must still be in index order.
        let out = run_indexed(64, 4, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn steal_takes_the_back_half_of_the_fullest_victim() {
        let queues: Vec<Mutex<VecDeque<usize>>> = vec![
            Mutex::new(VecDeque::new()),
            Mutex::new((0..4).collect()),
            Mutex::new((10..20).collect()),
        ];
        // Worker 0 is empty; the fullest victim is queue 2, whose back half (15..20) moves over.
        let got = steal_into(&queues, 0).unwrap();
        assert_eq!(got, 15);
        assert_eq!(
            queues[0].lock().unwrap().iter().copied().collect::<Vec<_>>(),
            vec![16, 17, 18, 19]
        );
        assert_eq!(queues[2].lock().unwrap().len(), 5);
        assert_eq!(queues[1].lock().unwrap().len(), 4, "the smaller victim is untouched");
    }

    #[test]
    fn steal_returns_none_when_all_queues_are_empty() {
        let queues: Vec<Mutex<VecDeque<usize>>> =
            vec![Mutex::new(VecDeque::new()), Mutex::new(VecDeque::new())];
        assert!(steal_into(&queues, 0).is_none());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(run_indexed(3, 16, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_worker_runs_inline_without_spawning() {
        let main_thread = std::thread::current().id();
        let out = run_indexed(4, 1, |i| {
            assert_eq!(std::thread::current().id(), main_thread);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn default_workers_is_at_least_one() {
        let w = default_workers();
        assert!((1..=8).contains(&w));
    }
}
