//! A small work-stealing pool of scoped `std::thread` workers.
//!
//! The implementation lives in the bottom-of-the-stack [`bnn_pool`] crate so that the tensor
//! kernels (`bnn-tensor`, M-split parallel GEMM) can ride the same scheduler without a
//! dependency cycle through this crate. It began life inside the design-space sweep engine
//! ([`crate::sweep`], which keeps a `sweep::pool` re-export) and this module remains the
//! historical path (`shift_bnn::pool`) every existing caller uses — the serving engine
//! (`bnn-serve`) runs its batched Monte-Carlo inference jobs through it.

pub use bnn_pool::{default_workers, run_indexed, run_indexed_with};
