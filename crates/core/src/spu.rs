//! A functional model of one Sample Processing Unit (SPU).
//!
//! Fig. 8 of the paper: each SPU owns a 4×4 PE tile (RC-mapped), a 4×4 array of GRNG slices with
//! function units (sampler, derivative processing unit, updater), a shift-unit array, a crossbar
//! and NBin/NBout buffers. The SPU trains one sampled model; 16 SPUs run in parallel, one per
//! Monte-Carlo sample, sharing the weight parameters.
//!
//! This module combines the cycle-level tile simulator of `bnn-arch` with an LFSR GRNG bank to
//! provide an executable model of the SPU's forward sampling and backward reconstruction path,
//! including the derivative-processing-unit approximation (`Δw_p ≈ w / σ_c²`, a 2-bit left shift
//! when `σ_c = 0.5`).

use bnn_arch::config::PeTile;
use bnn_arch::microsim::{MicrosimResult, RcTileSimulator};
use bnn_lfsr::{GrngBank, GrngMode, LfsrError};
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::Tensor;

/// The prior standard deviation the paper's DPU assumes (σ_c = 0.5, so 1/σ_c² = 4).
pub const PRIOR_SIGMA: f32 = 0.5;

/// One Sample Processing Unit.
#[derive(Debug)]
pub struct SampleProcessingUnit {
    tile: PeTile,
    grngs: GrngBank,
    simulator: RcTileSimulator,
}

impl SampleProcessingUnit {
    /// Creates an SPU with a `tile`-sized PE array and one GRNG slice per PE.
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError`] from GRNG construction.
    pub fn new(tile: PeTile, lfsr_width: usize, seed: u64) -> Result<Self, LfsrError> {
        let grngs = GrngBank::new(tile.count(), lfsr_width, seed)?;
        Ok(Self { tile, grngs, simulator: RcTileSimulator::new(tile) })
    }

    /// Creates the paper's default SPU: a 4×4 tile with 256-bit GRNG slices.
    ///
    /// # Errors
    ///
    /// Propagates [`LfsrError`] from GRNG construction.
    pub fn shift_bnn_default(seed: u64) -> Result<Self, LfsrError> {
        Self::new(PeTile { rows: 4, cols: 4 }, 256, seed)
    }

    /// The PE-tile dimensions.
    pub fn tile(&self) -> &PeTile {
        &self.tile
    }

    /// Number of GRNG slices (one per PE).
    pub fn grng_slices(&self) -> usize {
        self.grngs.len()
    }

    /// Runs the forward stage of one convolutional layer on this SPU: weights are sampled from
    /// `(μ, σ)` with ε drawn from GRNG slice 0 (during convolutional layers only one slice is
    /// enabled because the sampled weight is broadcast to every PE).
    ///
    /// # Panics
    ///
    /// Panics if tensor shapes do not match `geometry`.
    pub fn forward_conv(
        &mut self,
        geometry: &ConvGeometry,
        input: &Tensor,
        mu: &Tensor,
        sigma: &Tensor,
    ) -> MicrosimResult {
        self.grngs.set_mode(GrngMode::Forward);
        self.simulator.forward_conv(geometry, input, mu, sigma, self.grngs.slice_mut(0))
    }

    /// Reconstructs the layer's sampled weights during the backward stage by reversed LFSR
    /// shifting on slice 0, returning them in generation order.
    ///
    /// # Panics
    ///
    /// Panics if `mu` and `sigma` shapes disagree.
    pub fn backward_reconstruct(&mut self, mu: &Tensor, sigma: &Tensor) -> Vec<f32> {
        self.grngs.set_mode(GrngMode::Backward);
        self.simulator.reconstruct_weights_backward(mu, sigma, self.grngs.slice_mut(0))
    }

    /// The derivative-processing-unit approximation of the prior/posterior gradient:
    /// `Δw_p ≈ w / σ_c²`, which for `σ_c = 0.5` is a multiplication by 4 (a 2-bit left shift in
    /// the 16-bit datapath).
    pub fn dpu_prior_gradient(weight: f32) -> f32 {
        weight / (PRIOR_SIGMA * PRIOR_SIGMA)
    }

    /// The updater's Δσ computation: the final weight gradient multiplied by the ε that sampled
    /// the weight (process ③ of Fig. 1(a)).
    pub fn updater_sigma_gradient(final_weight_gradient: f32, epsilon: f32) -> f32 {
        final_weight_gradient * epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> ConvGeometry {
        ConvGeometry { in_channels: 1, out_channels: 2, kernel: 3, stride: 1, padding: 1 }
    }

    #[test]
    fn spu_has_one_grng_per_pe() {
        let spu = SampleProcessingUnit::shift_bnn_default(3).unwrap();
        assert_eq!(spu.grng_slices(), 16);
        assert_eq!(spu.tile().count(), 16);
    }

    #[test]
    fn forward_then_backward_reconstruction_is_exact() {
        let mut spu = SampleProcessingUnit::shift_bnn_default(11).unwrap();
        let geom = geometry();
        let mu = Tensor::filled(&[2, 1, 3, 3], 0.1);
        let sigma = Tensor::filled(&[2, 1, 3, 3], 0.05);
        let input = Tensor::filled(&[1, 8, 8], 1.0);
        let fw = spu.forward_conv(&geom, &input, &mu, &sigma);
        let reconstructed = spu.backward_reconstruct(&mu, &sigma);
        assert_eq!(reconstructed, fw.sampled_weights);
    }

    #[test]
    fn two_spus_with_different_seeds_sample_different_models() {
        let geom = geometry();
        let mu = Tensor::filled(&[2, 1, 3, 3], 0.0);
        let sigma = Tensor::filled(&[2, 1, 3, 3], 1.0);
        let input = Tensor::filled(&[1, 4, 4], 1.0);
        let mut a = SampleProcessingUnit::shift_bnn_default(1).unwrap();
        let mut b = SampleProcessingUnit::shift_bnn_default(2).unwrap();
        let wa = a.forward_conv(&geom, &input, &mu, &sigma).sampled_weights;
        let wb = b.forward_conv(&geom, &input, &mu, &sigma).sampled_weights;
        assert_ne!(wa, wb);
    }

    #[test]
    fn dpu_approximation_is_a_two_bit_shift_for_the_default_prior() {
        assert_eq!(SampleProcessingUnit::dpu_prior_gradient(0.25), 1.0);
        assert_eq!(SampleProcessingUnit::dpu_prior_gradient(-1.0), -4.0);
    }

    #[test]
    fn updater_scales_gradient_by_epsilon() {
        assert_eq!(SampleProcessingUnit::updater_sigma_gradient(0.5, 2.0), 1.0);
        assert_eq!(SampleProcessingUnit::updater_sigma_gradient(0.5, 0.0), 0.0);
    }
}
