//! **Shift-BNN** — reproduction of the MICRO 2021 paper "Shift-BNN: Highly-Efficient
//! Probabilistic Bayesian Neural Network Training via Memory-Friendly Pattern Retrieving".
//!
//! Training a Bayesian neural network draws one Gaussian random variable ε per weight per
//! Monte-Carlo sample during the forward pass and needs the same ε again during backpropagation;
//! on conventional training accelerators these ε dominate off-chip traffic (up to ~71%). The
//! paper's insight is that the LFSR-based Gaussian generators producing the ε are *reversible*,
//! so the backward pass can regenerate every ε locally by shifting the LFSRs backwards — no
//! storage, no traffic, bit-identical training. Shift-BNN is the accelerator built around that
//! idea: 16 Sample Processing Units with RC-mapped 4×4 PE tiles, per-PE GRNG slices and function
//! units.
//!
//! This crate ties the substrates together into the paper's evaluated artifacts:
//!
//! * [`designs`] — the four comparison designs (MN-Acc, RC-Acc, MNShift-Acc, Shift-BNN);
//! * [`spu`] — a functional Sample Processing Unit (PE tile + GRNG bank + DPU/updater math);
//! * [`mod@evaluate`] — run a model's training workload through a design (or the GPU model);
//! * [`compare`] — multi-design comparisons (energy, speedup, GOPS/W, DRAM accesses, footprint);
//! * [`scalability`] — sample-count sweeps;
//! * [`pool`] — the shared work-stealing thread pool (index-ordered results, optional
//!   per-worker state) that both the sweep engine and the serving engine (`bnn-serve`)
//!   schedule on;
//! * [`sweep`] — the design-space sweep engine: the (design × model × samples × precision)
//!   grid as independent jobs on the pool, aggregated into one deterministically-serialized
//!   [`sweep::SweepReport`] that every figure is a view of.
//!
//! The algorithmic side (actual Bayes-by-Backprop training with LFSR-retrieved ε) lives in the
//! companion crate `bnn-train`; the reversible generators themselves in `bnn-lfsr`.
//!
//! # Example
//!
//! ```
//! use shift_bnn::compare::DesignComparison;
//! use shift_bnn::designs::DesignKind;
//! use bnn_models::ModelKind;
//!
//! let comparison = DesignComparison::run(&ModelKind::LeNet.bnn(), 16, &DesignKind::all());
//! let energy = comparison.normalized_energy(DesignKind::RcAcc);
//! let (_, shift_bnn_energy) = energy.iter().find(|(d, _)| *d == DesignKind::ShiftBnn).unwrap();
//! assert!(*shift_bnn_energy < 1.0); // Shift-BNN consumes less energy than the RC baseline
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compare;
pub mod designs;
pub mod evaluate;
pub mod pool;
pub mod scalability;
pub mod spu;
pub mod sweep;

pub use compare::{compare_all_designs, DesignComparison};
pub use designs::DesignKind;
pub use evaluate::{evaluate, evaluate_gpu, DesignEvaluation};
pub use pool::{run_indexed, run_indexed_with};
pub use scalability::{sweep_samples, ScalabilityPoint, FIG13_SAMPLE_COUNTS};
pub use spu::SampleProcessingUnit;
pub use sweep::summary::SweepSummary;
pub use sweep::{paper_sweep, run_sweep, SweepGrid, SweepPoint, SweepPrecision, SweepReport};
