//! Sample-size scalability sweeps — the data behind Fig. 13.

use crate::designs::DesignKind;
use crate::sweep::pool::default_workers;
use crate::sweep::{run_sweep, SweepGrid, SweepPrecision};
use bnn_arch::EnergyModel;
use bnn_models::ModelConfig;

/// Metrics at one sample count of a scalability sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityPoint {
    /// The Monte-Carlo sample count `S`.
    pub samples: usize,
    /// Fractional energy reduction of Shift-BNN over RC-Acc (`1 − E_shift / E_rc`).
    pub shift_energy_reduction: f64,
    /// Fractional energy reduction of MNShift-Acc over MN-Acc.
    pub mnshift_energy_reduction: f64,
    /// Energy efficiency (GOPS/W) of Shift-BNN.
    pub shift_efficiency: f64,
    /// Energy efficiency (GOPS/W) of MNShift-Acc.
    pub mnshift_efficiency: f64,
}

/// Sweeps the sample counts of Fig. 13 (4…128) for one model.
///
/// The (design × samples) grid runs on the sweep engine's work-stealing pool; the derived
/// points are identical to evaluating each (design, S) pair serially.
pub fn sweep_samples(model: &ModelConfig, sample_counts: &[usize]) -> Vec<ScalabilityPoint> {
    let grid = SweepGrid {
        designs: DesignKind::all().to_vec(),
        models: vec![model.clone()],
        sample_counts: sample_counts.to_vec(),
        precisions: vec![SweepPrecision::Bits16],
    };
    let report = run_sweep(&grid, default_workers(), &EnergyModel::default());
    report.scalability(&model.name, sample_counts)
}

/// The sample counts used by the paper's Fig. 13.
pub const FIG13_SAMPLE_COUNTS: [usize; 6] = [4, 8, 16, 32, 64, 128];

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::ModelKind;

    #[test]
    fn energy_reduction_grows_with_sample_count() {
        // Fig. 13's headline: the savings increase as S grows because ε's share of the traffic
        // grows.
        for kind in [ModelKind::Mlp, ModelKind::LeNet, ModelKind::Vgg16] {
            let points = sweep_samples(&kind.bnn(), &FIG13_SAMPLE_COUNTS);
            assert_eq!(points.len(), 6);
            for pair in points.windows(2) {
                // Allow sub-percent wiggles from cycle-count rounding; the trend must rise.
                assert!(
                    pair[1].shift_energy_reduction >= pair[0].shift_energy_reduction - 5e-3,
                    "{}: S={} -> S={} reduction fell ({} -> {})",
                    kind.paper_name(),
                    pair[0].samples,
                    pair[1].samples,
                    pair[0].shift_energy_reduction,
                    pair[1].shift_energy_reduction
                );
            }
        }
    }

    #[test]
    fn shift_bnn_efficiency_exceeds_mnshift_at_every_sample_count() {
        let points = sweep_samples(&ModelKind::LeNet.bnn(), &FIG13_SAMPLE_COUNTS);
        for p in points {
            assert!(
                p.shift_efficiency > p.mnshift_efficiency,
                "S={}: {} vs {}",
                p.samples,
                p.shift_efficiency,
                p.mnshift_efficiency
            );
            assert!(p.shift_energy_reduction > 0.0 && p.shift_energy_reduction < 1.0);
        }
    }
}
