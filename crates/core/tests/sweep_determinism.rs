//! Determinism contract of the sweep engine: the same grid run with 1 worker and with N
//! workers must produce **byte-identical** `SweepReport` JSON. Record order is fixed by grid
//! index, never by completion order, and the hand-rolled serializer is a pure function of the
//! report — so scheduling noise cannot leak into the artifact.

use bnn_arch::EnergyModel;
use bnn_models::ModelKind;
use shift_bnn::designs::DesignKind;
use shift_bnn::sweep::{run_sweep, SweepGrid, SweepPrecision};

fn small_grid() -> SweepGrid {
    SweepGrid {
        designs: DesignKind::all().to_vec(),
        models: vec![ModelKind::Mlp.bnn(), ModelKind::LeNet.bnn(), ModelKind::LeNet.dnn()],
        sample_counts: vec![4, 16, 32],
        precisions: vec![SweepPrecision::Bits16, SweepPrecision::Bits32],
    }
}

#[test]
fn one_worker_and_many_workers_serialize_byte_identically() {
    let grid = small_grid();
    let energy = EnergyModel::default();
    let baseline = run_sweep(&grid, 1, &energy).to_json_string();
    for workers in [2, 3, 7, 16] {
        let parallel = run_sweep(&grid, workers, &energy).to_json_string();
        assert_eq!(baseline, parallel, "JSON diverged at {workers} workers");
    }
}

#[test]
fn full_figure_grid_is_deterministic_across_worker_counts() {
    let grid = SweepGrid::paper_figures();
    let energy = EnergyModel::default();
    let serial = run_sweep(&grid, 1, &energy);
    let parallel = run_sweep(&grid, 6, &energy);
    // Structural equality first (cheaper diagnostics than a giant string diff)...
    assert_eq!(serial.records.len(), parallel.records.len());
    for (a, b) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(a, b, "record {} diverged", a.point.index);
    }
    // ...then the byte-level contract the artifact depends on.
    assert_eq!(serial.to_json_string(), parallel.to_json_string());
}

#[test]
fn repeated_runs_are_reproducible() {
    let grid = small_grid();
    let energy = EnergyModel::default();
    let first = run_sweep(&grid, 4, &energy).to_json_string();
    let second = run_sweep(&grid, 4, &energy).to_json_string();
    assert_eq!(first, second);
}

#[test]
fn records_follow_grid_enumeration_order() {
    let grid = small_grid();
    let report = run_sweep(&grid, 5, &EnergyModel::default());
    let points = grid.points();
    assert_eq!(report.records.len(), points.len());
    for (record, point) in report.records.iter().zip(&points) {
        assert_eq!(&record.point, point);
        // The report inside must describe the same point.
        assert_eq!(record.report.design, point.design.name());
        assert_eq!(record.report.model, point.model.name);
        assert_eq!(record.report.samples, point.samples);
    }
}
