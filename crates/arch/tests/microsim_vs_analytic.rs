//! Cross-validation of the two cycle models over randomized layer geometries — the sanity
//! check DESIGN.md §3 describes, now enforced: the cycle-level `RcTileSimulator` actually
//! *executes* a convolution on the PE tile, while `simulate`'s analytic formula derives the
//! same quantity from MAC counts and the RC mapping's utilization. For any geometry the two
//! must agree to within one cycle (the analytic path rounds through `f64`), i.e. their ratio
//! is pinned at 1 up to that rounding.

use bnn_arch::config::{AcceleratorConfig, PeTile};
use bnn_arch::mapping::MappingKind;
use bnn_arch::microsim::RcTileSimulator;
use bnn_arch::simulate::analytic_compute_cycles;
use bnn_lfsr::{Grng, GrngMode};
use bnn_models::workload::LayerVolume;
use bnn_models::LayerDims;
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::Tensor;
use proptest::prelude::*;

fn params(geom: &ConvGeometry, scale: f32) -> (Tensor, Tensor) {
    let shape = [geom.out_channels, geom.in_channels, geom.kernel, geom.kernel];
    let count: usize = shape.iter().product();
    let mu = Tensor::from_vec(
        shape.to_vec(),
        (0..count).map(|i| ((i as f32) * 0.37 + scale).sin() * 0.3).collect(),
    )
    .unwrap();
    let sigma = Tensor::filled(&shape, 0.04);
    (mu, sigma)
}

/// Exhaustive companion to the property test below: the ±1-cycle agreement must hold for
/// *every* geometry in the declared domain, not just the sampled ones (cheap here because the
/// closed-form `analytic_forward_cycles` stands in for executing the tile).
#[test]
fn analytic_agreement_holds_across_the_entire_domain() {
    let sim = RcTileSimulator::new(PeTile { rows: 4, cols: 4 });
    let config = AcceleratorConfig { mapping: MappingKind::Rc, ..AcceleratorConfig::default() };
    let mut checked = 0u32;
    for in_c in 1..4 {
        for out_c in 1..6 {
            for kernel in [1usize, 3, 5] {
                for size in 6..13 {
                    for stride in 1..3 {
                        for pad_sel in 0..3usize {
                            let padding = pad_sel.min(kernel / 2);
                            let geom = ConvGeometry {
                                in_channels: in_c,
                                out_channels: out_c,
                                kernel,
                                stride,
                                padding,
                            };
                            let (oh, ow) = geom.output_size(size, size);
                            let scheduled = sim.analytic_forward_cycles(&geom, oh, ow);
                            let dims = LayerDims::conv(
                                "l", in_c, out_c, kernel, size, size, stride, padding,
                            );
                            let volume = LayerVolume::for_layer(&dims, 1, false);
                            let analytic = analytic_compute_cycles(&config, &volume, false);
                            assert!(
                                scheduled.abs_diff(analytic) <= 1,
                                "tile {scheduled} vs analytic {analytic} cycles for {geom:?} (input {size}x{size})"
                            );
                            checked += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(checked, 3 * 5 * 3 * 7 * 2 * 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The executed tile schedule and the analytic utilization formula must count the same
    /// forward-stage cycles (±1 for the analytic path's float rounding) on any geometry.
    #[test]
    fn microsim_cycles_track_analytic_compute_cycles(
        in_c in 1usize..4,
        out_c in 1usize..6,
        k_sel in 0usize..3,
        size in 6usize..13,
        stride in 1usize..3,
        pad_sel in 0usize..3,
    ) {
        let kernel = [1usize, 3, 5][k_sel];
        let padding = pad_sel.min(kernel / 2);
        let geom = ConvGeometry {
            in_channels: in_c,
            out_channels: out_c,
            kernel,
            stride,
            padding,
        };
        let sim = RcTileSimulator::new(PeTile { rows: 4, cols: 4 });
        let (mu, sigma) = params(&geom, size as f32);
        let input = Tensor::from_vec(
            vec![in_c, size, size],
            (0..in_c * size * size).map(|i| ((i as f32) * 0.11).cos()).collect(),
        )
        .unwrap();
        let mut grng = Grng::shift_bnn_default(size as u64 * 31 + out_c as u64).unwrap();
        let executed = sim.forward_conv(&geom, &input, &mu, &sigma, &mut grng);

        // The executed schedule matches the tile's own closed form exactly.
        let (oh, ow) = geom.output_size(size, size);
        prop_assert_eq!(executed.cycles, sim.analytic_forward_cycles(&geom, oh, ow));

        // The layer descriptor derives the same output size as the tensor-level geometry.
        let dims = LayerDims::conv("l", in_c, out_c, kernel, size, size, stride, padding);
        prop_assert_eq!((dims.r, dims.c), (oh, ow));

        // The analytic simulator's compute-cycle formula (RC mapping, one sample => one SPU
        // round) agrees to within one cycle; equivalently the ratio is 1 up to rounding.
        let volume = LayerVolume::for_layer(&dims, 1, false);
        let config = AcceleratorConfig { mapping: MappingKind::Rc, ..AcceleratorConfig::default() };
        let analytic = analytic_compute_cycles(&config, &volume, false);
        let diff = executed.cycles.abs_diff(analytic);
        prop_assert!(
            diff <= 1,
            "executed {} vs analytic {} cycles for {:?} (input {}x{})",
            executed.cycles,
            analytic,
            geom,
            size,
            size
        );
        // The ±1 rounding slack dominates the ratio on tiny layers (e.g. 9 vs 10 cycles for a
        // 1×1×1 kernel), so the tight relative bound only applies once the count is large
        // enough for the slack to be negligible.
        if analytic >= 1000 {
            let ratio = executed.cycles as f64 / analytic as f64;
            prop_assert!((0.999..=1.001).contains(&ratio), "cycle ratio {} out of bounds", ratio);
        }

        // MAC accounting is exact on both sides: every weight touches every output position.
        let weights = (out_c * in_c * kernel * kernel) as u64;
        prop_assert_eq!(executed.macs, weights * (oh * ow) as u64);
        prop_assert_eq!(volume.stage_macs, executed.macs);
    }

    /// Reversed LFSR shifting reconstructs the forward pass's sampled weights bit-exactly for
    /// any geometry and seed — the paper's core claim, cross-checked at the microsim level.
    #[test]
    fn backward_retrieval_reproduces_sampled_weights(
        in_c in 1usize..4,
        out_c in 1usize..5,
        size in 5usize..10,
        seed in 0u64..1_000,
    ) {
        let geom = ConvGeometry {
            in_channels: in_c,
            out_channels: out_c,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let sim = RcTileSimulator::new(PeTile { rows: 4, cols: 4 });
        let (mu, sigma) = params(&geom, seed as f32 * 0.01);
        let input = Tensor::filled(&[in_c, size, size], 0.25);
        let mut grng = Grng::shift_bnn_default(seed).unwrap();
        let forward = sim.forward_conv(&geom, &input, &mu, &sigma, &mut grng);
        grng.set_mode(GrngMode::Backward);
        let reconstructed = sim.reconstruct_weights_backward(&mu, &sigma, &mut grng);
        prop_assert_eq!(reconstructed, forward.sampled_weights);
    }
}
