//! FPGA resource and power model for the Shift-BNN SPU components.
//!
//! The paper prototypes the accelerator in Verilog RTL on a Xilinx VC709 board and reports per
//! component LUT/FF/DSP/BRAM usage and average power (Table 2). Synthesis is not available in
//! this environment, so this module provides an analytic model calibrated so that the paper's
//! default configuration (4×4 PE tile, 16 GRNG slices with 256-bit LFSRs, 16-bit datapath)
//! reproduces Table 2 exactly, and scales the estimates with the configuration parameters
//! (tile size, LFSR width, buffer capacity, precision).

use crate::config::AcceleratorConfig;

/// FPGA resource usage and average power of a hardware block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
    /// Block RAMs (36 Kb each).
    pub bram: u64,
    /// Average power in watts.
    pub avg_power_w: f64,
}

impl ResourceUsage {
    /// Componentwise sum.
    pub fn accumulate(&mut self, other: &ResourceUsage) {
        self.lut += other.lut;
        self.ff += other.ff;
        self.dsp += other.dsp;
        self.bram += other.bram;
        self.avg_power_w += other.avg_power_w;
    }

    /// Scales every resource (used for whole-accelerator extrapolation from one SPU).
    pub fn scaled(&self, factor: f64) -> ResourceUsage {
        ResourceUsage {
            lut: (self.lut as f64 * factor).round() as u64,
            ff: (self.ff as f64 * factor).round() as u64,
            dsp: (self.dsp as f64 * factor).round() as u64,
            bram: (self.bram as f64 * factor).round() as u64,
            avg_power_w: self.avg_power_w * factor,
        }
    }
}

/// The hardware blocks inside one Sample Processing Unit (Table 2's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpuComponent {
    /// The 2-D PE tile performing the MACs, ReLU and pooling.
    PeTile,
    /// The shift-unit array staging candidate input neurons.
    ShiftArray,
    /// Sampler, derivative processing unit and updater.
    FunctionUnits,
    /// The per-PE GRNG slices (LFSR + ε generator).
    Grngs,
    /// NBin/NBout neuron buffers.
    NeuronBuffers,
}

impl SpuComponent {
    /// The five components in Table 2's order.
    pub fn all() -> [SpuComponent; 5] {
        [
            SpuComponent::PeTile,
            SpuComponent::ShiftArray,
            SpuComponent::FunctionUnits,
            SpuComponent::Grngs,
            SpuComponent::NeuronBuffers,
        ]
    }

    /// Short display name matching the paper's table header.
    pub fn name(&self) -> &'static str {
        match self {
            SpuComponent::PeTile => "PE tile",
            SpuComponent::ShiftArray => "Shift array",
            SpuComponent::FunctionUnits => "Function units",
            SpuComponent::Grngs => "GRNGs",
            SpuComponent::NeuronBuffers => "NBin/NBout",
        }
    }
}

// Calibration constants: Table 2 values at the reference configuration
// (16 PEs, 16 shift units, 16 function-unit slices, 16 × 256-bit GRNGs, 64 KiB neuron buffers).
const REF_PES: f64 = 16.0;
const REF_GRNGS: f64 = 16.0;
const REF_LFSR_WIDTH: f64 = 256.0;
const REF_NEURON_KIB: f64 = 64.0;

/// Resource usage of one SPU component under `config`.
pub fn component_usage(component: SpuComponent, config: &AcceleratorConfig) -> ResourceUsage {
    let pes = config.pe_tile.count() as f64;
    let pe_scale = pes / REF_PES;
    let grng_scale = (pes / REF_GRNGS) * (config.lfsr_width as f64 / REF_LFSR_WIDTH);
    let buffer_scale = config.neuron_buffer_kib as f64 / REF_NEURON_KIB;
    // Reversion support adds the mapping-specific wiring/adder overhead to the PE array logic.
    let wiring = if config.lfsr_reversion {
        1.0 + config.mapping.reversion_overheads().wiring_area
    } else {
        1.0
    };
    match component {
        SpuComponent::PeTile => ResourceUsage {
            lut: (966.0 * pe_scale * wiring).round() as u64,
            ff: (469.0 * pe_scale * wiring).round() as u64,
            dsp: (16.0 * pe_scale).round() as u64,
            bram: 0,
            avg_power_w: 0.076 * pe_scale,
        },
        SpuComponent::ShiftArray => ResourceUsage {
            lut: (222.0 * pe_scale).round() as u64,
            ff: (464.0 * pe_scale).round() as u64,
            dsp: 0,
            bram: 0,
            avg_power_w: 0.016 * pe_scale,
        },
        SpuComponent::FunctionUnits => ResourceUsage {
            lut: (785.0 * pe_scale).round() as u64,
            ff: (399.0 * pe_scale).round() as u64,
            dsp: (32.0 * pe_scale).round() as u64,
            bram: 0,
            // Only one of the 16 function-unit slices is active during convolutional layers,
            // hence the low average power despite the DSP count.
            avg_power_w: 0.008 * pe_scale,
        },
        SpuComponent::Grngs => ResourceUsage {
            lut: (2277.0 * grng_scale).round() as u64,
            ff: (4224.0 * grng_scale).round() as u64,
            dsp: 0,
            bram: 0,
            avg_power_w: 0.005 * grng_scale,
        },
        SpuComponent::NeuronBuffers => ResourceUsage {
            lut: 0,
            ff: 0,
            dsp: 0,
            bram: (48.0 * buffer_scale).round() as u64,
            avg_power_w: 0.112 * buffer_scale,
        },
    }
}

/// Total resource usage of one SPU.
pub fn spu_usage(config: &AcceleratorConfig) -> ResourceUsage {
    let mut total = ResourceUsage::default();
    for component in SpuComponent::all() {
        total.accumulate(&component_usage(component, config));
    }
    total
}

/// Total resource usage of the whole accelerator: all SPUs plus a fixed overhead for the weight
/// parameter buffer, crossbar and central controller.
pub fn accelerator_usage(config: &AcceleratorConfig) -> ResourceUsage {
    let mut total = spu_usage(config).scaled(config.spus as f64);
    let controller = ResourceUsage {
        lut: 4200,
        ff: 3100,
        dsp: 0,
        bram: (config.weight_buffer_kib as f64 / 4.5).ceil() as u64,
        avg_power_w: 0.35,
    };
    total.accumulate(&controller);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::mapping::MappingKind;

    fn shift_bnn_config() -> AcceleratorConfig {
        AcceleratorConfig {
            name: "Shift-BNN".into(),
            lfsr_reversion: true,
            mapping: MappingKind::Rc,
            ..AcceleratorConfig::default()
        }
    }

    #[test]
    fn reference_configuration_reproduces_table_2() {
        // Table 2 is reported for the RC-mapped SPU; the baseline (no reversion wiring factor)
        // numbers must match exactly at the reference configuration.
        let cfg = AcceleratorConfig::default();
        let pe = component_usage(SpuComponent::PeTile, &cfg);
        assert_eq!((pe.lut, pe.ff, pe.dsp), (966, 469, 16));
        let shift = component_usage(SpuComponent::ShiftArray, &cfg);
        assert_eq!((shift.lut, shift.ff), (222, 464));
        let fu = component_usage(SpuComponent::FunctionUnits, &cfg);
        assert_eq!((fu.lut, fu.ff, fu.dsp), (785, 399, 32));
        let grng = component_usage(SpuComponent::Grngs, &cfg);
        assert_eq!((grng.lut, grng.ff), (2277, 4224));
        let nb = component_usage(SpuComponent::NeuronBuffers, &cfg);
        assert_eq!(nb.bram, 48);
        assert!((nb.avg_power_w - 0.112).abs() < 1e-9);
    }

    #[test]
    fn grng_power_is_small_despite_large_ff_count() {
        // The paper highlights that GRNGs occupy many FFs yet average only ~5 mW.
        let cfg = AcceleratorConfig::default();
        let grng = component_usage(SpuComponent::Grngs, &cfg);
        let pe = component_usage(SpuComponent::PeTile, &cfg);
        assert!(grng.ff > pe.ff);
        assert!(grng.avg_power_w < pe.avg_power_w / 5.0);
    }

    #[test]
    fn reversion_adds_only_modest_area_under_rc_mapping() {
        let base = spu_usage(&AcceleratorConfig::default());
        let shift = spu_usage(&shift_bnn_config());
        let increase = shift.lut as f64 / base.lut as f64;
        assert!(increase < 1.05, "RC reversion area increase {increase}");
        assert!(shift.lut >= base.lut);
    }

    #[test]
    fn mn_reversion_costs_more_area_than_rc_reversion() {
        let rc = spu_usage(&shift_bnn_config());
        let mn = spu_usage(&AcceleratorConfig {
            mapping: MappingKind::Mn,
            lfsr_reversion: true,
            ..AcceleratorConfig::default()
        });
        assert!(mn.lut > rc.lut);
    }

    #[test]
    fn lfsr_width_scales_grng_resources() {
        let narrow = component_usage(
            SpuComponent::Grngs,
            &AcceleratorConfig { lfsr_width: 128, ..AcceleratorConfig::default() },
        );
        let wide = component_usage(SpuComponent::Grngs, &AcceleratorConfig::default());
        assert!(narrow.ff * 2 == wide.ff || narrow.ff * 2 == wide.ff + 1);
    }

    #[test]
    fn accelerator_usage_scales_with_spu_count() {
        let cfg = AcceleratorConfig::default();
        let one_spu = spu_usage(&cfg);
        let total = accelerator_usage(&cfg);
        assert!(total.lut > one_spu.lut * (cfg.spus as u64 - 1));
        assert!(total.bram >= one_spu.bram * cfg.spus as u64);
        assert!(total.avg_power_w > one_spu.avg_power_w * 15.0);
    }

    #[test]
    fn component_names_cover_table_rows() {
        let names: Vec<&str> = SpuComponent::all().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 5);
        assert!(names.contains(&"GRNGs"));
        assert!(names.contains(&"NBin/NBout"));
    }
}
