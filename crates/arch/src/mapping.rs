//! Computation mapping schemes and their interaction with LFSR reversion.
//!
//! Section 5 of the paper explores four ways of mapping the convolution loop nest onto a 2-D PE
//! tile and analyses what each needs in order to support ε retrieval by reversed LFSR shifting:
//!
//! | Mapping | Parallel dims | Reversion cost |
//! |---|---|---|
//! | MN | output × input channels | ε swap between PE(m,n) and PE(n,m) or duplicated adder trees |
//! | RC | output feature map | two accumulation/control modes only |
//! | K  | kernel elements | O(n²) ε-swap wiring + dual control |
//! | BM | batch × output channels | extra per-column adder trees + dual input buffers |
//!
//! The per-mapping `ReversionOverheads` below quantify those costs for the energy, SRAM and
//! area models; RC is the cheapest, which is why Shift-BNN adopts it.

use crate::config::PeTile;
use bnn_models::{LayerDims, LayerKind};

/// The four computation mapping schemes considered in the design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Input-channel × output-channel mapping (Diannao / NVDLA style).
    Mn,
    /// Output-feature-map mapping (ShiDianNao style) — the scheme Shift-BNN builds on.
    Rc,
    /// Kernel mapping (systolic style).
    K,
    /// Batch × output-channel mapping (Procrustes style).
    Bm,
}

/// One training stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Forward propagation.
    Forward,
    /// Backward error propagation.
    Backward,
    /// Gradient calculation and weight update.
    GradientCalc,
}

impl Stage {
    /// The three stages in execution order.
    pub fn all() -> [Stage; 3] {
        [Stage::Forward, Stage::Backward, Stage::GradientCalc]
    }

    /// Whether the stage consumes ε a second time (i.e. is after the forward stage).
    pub fn reuses_epsilon(&self) -> bool {
        !matches!(self, Stage::Forward)
    }
}

/// Relative overheads a mapping incurs when the LFSR reversion technique is applied to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReversionOverheads {
    /// Multiplier (≥ 1) on arithmetic energy during the backward/gradient stages (duplicated
    /// adder trees, extra reduction stages).
    pub compute_energy: f64,
    /// Multiplier (≥ 1) on on-chip buffer accesses during the backward/gradient stages
    /// (intermittent partial-sum round trips, duplicated buffers).
    pub sram_energy: f64,
    /// Fractional area/wiring overhead added to the PE array (ε-swap interconnect, extra adder
    /// trees), used by the FPGA resource model.
    pub wiring_area: f64,
    /// Number of distinct accumulation/control modes the PE needs.
    pub control_modes: u32,
}

impl MappingKind {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            MappingKind::Mn => "MN",
            MappingKind::Rc => "RC",
            MappingKind::K => "K",
            MappingKind::Bm => "BM",
        }
    }

    /// All four mappings.
    pub fn all() -> [MappingKind; 4] {
        [MappingKind::Mn, MappingKind::Rc, MappingKind::K, MappingKind::Bm]
    }

    /// PE-array utilization achieved on a layer (the fraction of PE-cycles doing useful MACs),
    /// determined by how well the layer's parallel dimensions fill the tile.
    pub fn utilization(&self, dims: &LayerDims, tile: &PeTile) -> f64 {
        let eff = |work: usize, pes: usize| -> f64 {
            if work == 0 || pes == 0 {
                return 0.0;
            }
            let slots = work.div_ceil(pes) * pes;
            work as f64 / slots as f64
        };
        match (self, dims.kind) {
            (MappingKind::Rc, LayerKind::Conv) => eff(dims.r, tile.rows) * eff(dims.c, tile.cols),
            // In an FC layer every PE produces a different output neuron.
            (MappingKind::Rc, LayerKind::FullyConnected) => eff(dims.m, tile.count()),
            (MappingKind::Mn, _) => eff(dims.m, tile.rows) * eff(dims.n, tile.cols),
            (MappingKind::K, _) => eff(dims.k, tile.rows) * eff(dims.k, tile.cols),
            // Mini-batch of one: only a single batch column is active.
            (MappingKind::Bm, _) => eff(1, tile.rows) * eff(dims.m, tile.cols),
        }
    }

    /// Relative off-chip feature-map traffic of the mapping compared to RC.
    ///
    /// RC (output-feature-map) mapping maximizes reuse of input neurons on a 2-D feature map
    /// (they flow through the PE array), so it is the reference. Channel-parallel mappings
    /// re-fetch input neurons for every output-channel group and spill partial sums more often,
    /// which shows up as extra feature-map DRAM traffic.
    pub fn feature_traffic_factor(&self) -> f64 {
        match self {
            MappingKind::Rc => 1.0,
            MappingKind::Mn => 2.5,
            MappingKind::K => 1.8,
            MappingKind::Bm => 2.2,
        }
    }

    /// Overheads this mapping pays to support LFSR reversion (Section 5's qualitative analysis,
    /// quantified for the energy/area models).
    pub fn reversion_overheads(&self) -> ReversionOverheads {
        match self {
            // RC needs only a second accumulation mode in the PE and psum round trips via NBout.
            MappingKind::Rc => ReversionOverheads {
                compute_energy: 1.0,
                sram_energy: 1.10,
                wiring_area: 0.02,
                control_modes: 2,
            },
            // MN (variant of Fig. 7(c)): an n-input adder tree per PE row is duplicated and the
            // partial sums of whole PE rows must be regrouped through the buffers.
            MappingKind::Mn => ReversionOverheads {
                compute_energy: 1.50,
                sram_energy: 1.80,
                wiring_area: 0.10,
                control_modes: 2,
            },
            // K needs O(n²) ε-swap wiring between PEs plus dual control.
            MappingKind::K => ReversionOverheads {
                compute_energy: 1.10,
                sram_energy: 1.10,
                wiring_area: 0.25,
                control_modes: 2,
            },
            // BM needs an adder tree per PE column and a second input-buffer organisation.
            MappingKind::Bm => ReversionOverheads {
                compute_energy: 1.25,
                sram_energy: 1.20,
                wiring_area: 0.15,
                control_modes: 2,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> PeTile {
        PeTile { rows: 4, cols: 4 }
    }

    #[test]
    fn rc_utilization_is_high_for_large_feature_maps_and_low_for_tiny_ones() {
        let big = LayerDims::conv("c", 64, 64, 3, 56, 56, 1, 1);
        let small = LayerDims::conv("c", 64, 64, 3, 4, 4, 1, 0);
        assert!(MappingKind::Rc.utilization(&big, &tile()) > 0.99);
        assert!(MappingKind::Rc.utilization(&small, &tile()) < 0.3);
    }

    #[test]
    fn mn_utilization_suffers_on_first_layer_with_three_input_channels() {
        let first = LayerDims::conv("conv1", 3, 64, 3, 224, 224, 1, 1);
        let util = MappingKind::Mn.utilization(&first, &tile());
        assert!(util <= 0.75, "3 input channels cannot fill a 4-wide dimension: {util}");
        let deep = LayerDims::conv("conv3", 256, 256, 3, 28, 28, 1, 1);
        assert!(MappingKind::Mn.utilization(&deep, &tile()) > 0.99);
    }

    #[test]
    fn k_mapping_utilization_depends_on_kernel_size() {
        let k3 = LayerDims::conv("c", 64, 64, 3, 28, 28, 1, 1);
        let k1 = LayerDims::conv("c", 64, 64, 1, 28, 28, 1, 0);
        assert!((MappingKind::K.utilization(&k3, &tile()) - 9.0 / 16.0).abs() < 1e-9);
        assert!((MappingKind::K.utilization(&k1, &tile()) - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn bm_mapping_wastes_rows_with_minibatch_of_one() {
        let l = LayerDims::conv("c", 64, 64, 3, 28, 28, 1, 1);
        let util = MappingKind::Bm.utilization(&l, &tile());
        assert!(util <= 0.25 + 1e-9, "only one of four batch rows can be active: {util}");
    }

    #[test]
    fn fc_layers_use_output_neuron_parallelism_under_rc() {
        let fc = LayerDims::fc("fc", 4096, 1000);
        let util = MappingKind::Rc.utilization(&fc, &tile());
        assert!(util > 0.98, "1000 outputs over 16 PEs: {util}");
        let tiny = LayerDims::fc("fc", 64, 10);
        assert!(MappingKind::Rc.utilization(&tiny, &tile()) < 0.7);
    }

    #[test]
    fn rc_has_the_cheapest_reversion_overheads() {
        let rc = MappingKind::Rc.reversion_overheads();
        for other in [MappingKind::Mn, MappingKind::K, MappingKind::Bm] {
            let o = other.reversion_overheads();
            assert!(rc.compute_energy <= o.compute_energy, "{}", other.name());
            assert!(rc.sram_energy <= o.sram_energy, "{}", other.name());
            assert!(rc.wiring_area < o.wiring_area, "{}", other.name());
        }
    }

    #[test]
    fn stage_enumeration_and_epsilon_reuse() {
        assert_eq!(Stage::all().len(), 3);
        assert!(!Stage::Forward.reuses_epsilon());
        assert!(Stage::Backward.reuses_epsilon());
        assert!(Stage::GradientCalc.reuses_epsilon());
    }

    #[test]
    fn rc_has_the_best_feature_map_reuse() {
        assert_eq!(MappingKind::Rc.feature_traffic_factor(), 1.0);
        for other in [MappingKind::Mn, MappingKind::K, MappingKind::Bm] {
            assert!(other.feature_traffic_factor() > 1.0, "{}", other.name());
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = MappingKind::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["MN", "RC", "K", "BM"]);
    }
}
