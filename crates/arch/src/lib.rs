//! Accelerator architecture simulator for the Shift-BNN reproduction.
//!
//! The paper evaluates its design with Verilog RTL synthesized for a Xilinx VC709 board plus the
//! Xilinx Power Estimator. This crate replaces that flow with an analytic-plus-cycle-level
//! simulator that captures the quantities the evaluation reports:
//!
//! * [`config`] — the hardware configuration shared by every design (PE tiles, SPUs, buffers,
//!   frequency, precision, DRAM bandwidth, LFSR width);
//! * [`mapping`] — the four computation mappings of the design-space exploration (MN, RC, K,
//!   BM), their PE utilization on a layer, and the overheads each pays to support LFSR
//!   reversion;
//! * [`simulate`] — the per-layer, per-stage traffic/latency/energy model producing a
//!   [`TrainingRunReport`];
//! * [`traffic`] / [`energy`] — operand-class traffic, footprint and energy accounting;
//! * [`microsim`] — a cycle-level model of one RC-mapped PE tile, validated against the
//!   reference convolution and used to sanity-check the analytic cycle counts;
//! * [`resource`] — the FPGA LUT/FF/DSP/BRAM/power model calibrated to the paper's Table 2;
//! * [`gpu`] — a roofline model of the Tesla P100 comparison point.
//!
//! # Example
//!
//! ```
//! use bnn_arch::config::AcceleratorConfig;
//! use bnn_arch::energy::EnergyModel;
//! use bnn_arch::simulate::simulate_training;
//! use bnn_models::ModelKind;
//!
//! let mut shift_bnn = AcceleratorConfig::default();
//! shift_bnn.name = "Shift-BNN".to_string();
//! shift_bnn.lfsr_reversion = true;
//!
//! let report = simulate_training(&shift_bnn, &ModelKind::LeNet.bnn(), 16, &EnergyModel::default());
//! assert_eq!(report.dram_traffic.epsilon, 0); // ε never leaves the chip
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod energy;
pub mod gpu;
pub mod mapping;
pub mod microsim;
pub mod resource;
pub mod simulate;
pub mod traffic;

pub use config::{AcceleratorConfig, PeTile};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use mapping::{MappingKind, Stage};
pub use simulate::{simulate_training, TrainingRunReport};
pub use traffic::{FootprintBreakdown, TrafficByOperand};
