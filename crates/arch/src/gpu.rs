//! Roofline-style GPU model used for the energy-efficiency comparison (Fig. 12).
//!
//! The paper measures a Tesla P100 with the Nvidia profiler; neither the GPU nor the profiler is
//! available here, so the comparison point is produced by a simple analytic model: execution time
//! is the maximum of the compute time at a realistic fraction of peak FLOPS and the memory time
//! implied by the training traffic (which, on a GPU, still includes storing and re-reading every
//! ε — the paper's point that GPUs cannot avoid the GRV round trip either), and energy is the
//! execution time multiplied by a sustained board power.

use bnn_models::workload::ModelVolume;
use bnn_models::ModelConfig;

/// Analytic GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Device name.
    pub name: String,
    /// Peak throughput in FLOP/s for the precision used by training.
    pub peak_flops: f64,
    /// Fraction of peak FLOPS sustained on convolution/GEMM-heavy training kernels.
    pub achievable_fraction: f64,
    /// Memory bandwidth in bytes per second.
    pub memory_bandwidth_b_s: f64,
    /// Sustained board power in watts during training.
    pub sustained_power_w: f64,
    /// Bytes per value of the training datapath (4 for the FP32 PyTorch baseline).
    pub bytes_per_value: usize,
}

impl GpuModel {
    /// A Tesla P100 (16 GB, PCIe) running FP32 training, the paper's GPU comparison point.
    pub fn tesla_p100() -> Self {
        Self {
            name: "Tesla P100".to_string(),
            peak_flops: 9.3e12,
            achievable_fraction: 0.35,
            memory_bandwidth_b_s: 732.0e9,
            sustained_power_w: 210.0,
            bytes_per_value: 4,
        }
    }
}

/// Result of simulating one training iteration on the GPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuReport {
    /// Execution time in seconds.
    pub latency_s: f64,
    /// Energy in millijoules.
    pub energy_mj: f64,
    /// Off-chip traffic in bytes (weights + ε + feature maps, all round trips).
    pub dram_bytes: u64,
    /// Total MAC operations.
    pub total_macs: u64,
}

impl GpuReport {
    /// Achieved throughput in GOPS (two operations per MAC).
    pub fn gops(&self) -> f64 {
        if self.latency_s > 0.0 {
            2.0 * self.total_macs as f64 / self.latency_s / 1e9
        } else {
            0.0
        }
    }

    /// Energy efficiency in GOPS per watt.
    pub fn gops_per_watt(&self, power_w: f64) -> f64 {
        if power_w > 0.0 {
            self.gops() / power_w
        } else {
            0.0
        }
    }
}

/// Simulates one training iteration of `model` with `samples` Monte-Carlo samples on `gpu`.
pub fn simulate_gpu_training(gpu: &GpuModel, model: &ModelConfig, samples: usize) -> GpuReport {
    let volume = ModelVolume::for_model(model, samples);
    let total_macs = volume.total_training_macs();

    // Off-chip traffic: parameters stream once per stage, feature maps once per stage per
    // sample, and ε must be written after the forward pass and read back twice — the GPU has no
    // way to avoid that round trip short of changing the algorithm.
    let weight_values = 4 * volume.total_weight_param_values();
    let epsilon_values = 3 * volume.total_epsilon_values();
    let feature_values = 3 * volume.total_feature_map_values();
    let dram_bytes = (weight_values + epsilon_values + feature_values) * gpu.bytes_per_value as u64;

    let compute_s = 2.0 * total_macs as f64 / (gpu.peak_flops * gpu.achievable_fraction);
    let memory_s = dram_bytes as f64 / gpu.memory_bandwidth_b_s;
    let latency_s = compute_s.max(memory_s);
    let energy_mj = latency_s * gpu.sustained_power_w * 1e3;

    GpuReport { latency_s, energy_mj, dram_bytes, total_macs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::ModelKind;

    #[test]
    fn p100_constants_are_sane() {
        let gpu = GpuModel::tesla_p100();
        assert!(gpu.peak_flops > 9e12);
        assert!(gpu.memory_bandwidth_b_s > 7e11);
        assert!(gpu.achievable_fraction > 0.0 && gpu.achievable_fraction <= 1.0);
    }

    #[test]
    fn small_fc_models_are_memory_bound_on_gpu() {
        let gpu = GpuModel::tesla_p100();
        let report = simulate_gpu_training(&gpu, &ModelKind::Mlp.bnn(), 16);
        let compute_s = 2.0 * report.total_macs as f64 / (gpu.peak_flops * gpu.achievable_fraction);
        let memory_s = report.dram_bytes as f64 / gpu.memory_bandwidth_b_s;
        assert!(memory_s > compute_s, "B-MLP should be bandwidth bound on a GPU");
        assert!((report.latency_s - memory_s).abs() < 1e-12);
    }

    #[test]
    fn epsilon_traffic_scales_with_samples_on_gpu_too() {
        let gpu = GpuModel::tesla_p100();
        let r8 = simulate_gpu_training(&gpu, &ModelKind::LeNet.bnn(), 8);
        let r32 = simulate_gpu_training(&gpu, &ModelKind::LeNet.bnn(), 32);
        assert!(r32.dram_bytes > 3 * r8.dram_bytes);
        assert!(r32.energy_mj > r8.energy_mj);
    }

    #[test]
    fn gops_and_efficiency_are_consistent() {
        let gpu = GpuModel::tesla_p100();
        let report = simulate_gpu_training(&gpu, &ModelKind::Vgg16.bnn(), 16);
        assert!(report.gops() > 0.0);
        let eff = report.gops_per_watt(gpu.sustained_power_w);
        assert!((eff - report.gops() / gpu.sustained_power_w).abs() < 1e-9);
    }
}
