//! Energy model: per-operation energy constants and accounting.
//!
//! Absolute values follow the well-known relative costs reported by Horowitz (ISSCC'14) and used
//! throughout the accelerator literature the paper builds on: an off-chip DRAM access costs two
//! to three orders of magnitude more energy than a 16-bit MAC, and on-chip SRAM sits in between.
//! The reproduction depends on those *ratios*, not on the absolute Joule values — every figure
//! normalizes against a baseline design, exactly as the paper does.

/// Per-operation energy constants (in picojoules) plus static power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one 16-bit multiply-accumulate.
    pub mac_pj: f64,
    /// Energy of reading or writing one 16-bit value in an on-chip SRAM buffer.
    pub sram_pj_per_value: f64,
    /// Energy of reading or writing one 16-bit value in off-chip DRAM (interface + device).
    pub dram_pj_per_value: f64,
    /// Energy of one GRNG event (LFSR shift + incremental sum update + sampler input).
    pub grng_pj_per_sample: f64,
    /// Energy of one extra adder-tree reduction stage (the MN-mapping reversion overhead).
    pub adder_tree_pj: f64,
    /// Static (leakage + clocking) power of the whole accelerator in watts.
    pub static_power_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            mac_pj: 1.0,
            sram_pj_per_value: 2.5,
            // Effective energy per 16-bit DRAM value, including the memory-interface controller
            // and the DDR device's activate/background power amortized over the accesses of a
            // memory-bound training phase. The paper extracts energy from Xilinx XPE, which
            // attributes the MIG + DDR3 power to the design the same way; what matters for the
            // reproduced figures is that off-chip accesses dominate a BNN iteration's energy.
            dram_pj_per_value: 2500.0,
            grng_pj_per_sample: 0.3,
            adder_tree_pj: 0.4,
            static_power_w: 0.5,
        }
    }
}

impl EnergyModel {
    /// Scales the DRAM cost relative to the default, used for sensitivity studies.
    pub fn with_dram_scale(mut self, scale: f64) -> Self {
        self.dram_pj_per_value *= scale;
        self
    }
}

/// Energy consumed by one simulated training run, broken down by component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Off-chip DRAM access energy in millijoules.
    pub dram_mj: f64,
    /// On-chip SRAM access energy in millijoules.
    pub sram_mj: f64,
    /// MAC / arithmetic energy in millijoules.
    pub compute_mj: f64,
    /// GRNG (LFSR shifting and ε generation) energy in millijoules.
    pub grng_mj: f64,
    /// Static energy (static power × execution time) in millijoules.
    pub static_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.dram_mj + self.sram_mj + self.compute_mj + self.grng_mj + self.static_mj
    }

    /// Fraction of the total taken by DRAM accesses.
    pub fn dram_fraction(&self) -> f64 {
        let total = self.total_mj();
        if total > 0.0 {
            self.dram_mj / total
        } else {
            0.0
        }
    }

    /// Elementwise sum of two breakdowns.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.dram_mj += other.dram_mj;
        self.sram_mj += other.sram_mj;
        self.compute_mj += other.compute_mj;
        self.grng_mj += other.grng_mj;
        self.static_mj += other.static_mj;
    }
}

/// Converts a count of events with a per-event picojoule cost into millijoules.
pub fn pj_to_mj(events: u64, pj_per_event: f64) -> f64 {
    events as f64 * pj_per_event * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preserves_memory_hierarchy_ordering() {
        let m = EnergyModel::default();
        assert!(m.dram_pj_per_value > 50.0 * m.sram_pj_per_value);
        assert!(m.sram_pj_per_value > m.mac_pj);
        assert!(m.grng_pj_per_sample < m.mac_pj);
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = EnergyBreakdown {
            dram_mj: 6.0,
            sram_mj: 2.0,
            compute_mj: 1.0,
            grng_mj: 0.5,
            static_mj: 0.5,
        };
        assert!((b.total_mj() - 10.0).abs() < 1e-12);
        assert!((b.dram_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn accumulate_adds_componentwise() {
        let mut a = EnergyBreakdown { dram_mj: 1.0, ..Default::default() };
        let b = EnergyBreakdown { dram_mj: 2.0, compute_mj: 3.0, ..Default::default() };
        a.accumulate(&b);
        assert_eq!(a.dram_mj, 3.0);
        assert_eq!(a.compute_mj, 3.0);
    }

    #[test]
    fn pj_conversion() {
        assert!((pj_to_mj(1_000_000_000, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dram_scaling_for_sensitivity_studies() {
        let m = EnergyModel::default().with_dram_scale(0.5);
        assert!(
            (m.dram_pj_per_value - EnergyModel::default().dram_pj_per_value / 2.0).abs() < 1e-9
        );
    }

    #[test]
    fn empty_breakdown_has_zero_fraction() {
        assert_eq!(EnergyBreakdown::default().dram_fraction(), 0.0);
    }
}
