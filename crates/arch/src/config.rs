//! Accelerator hardware configuration.

use crate::mapping::MappingKind;

/// Dimensions of a 2-D processing-element tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeTile {
    /// Number of PE rows.
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
}

impl PeTile {
    /// Number of PEs in the tile.
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for PeTile {
    fn default() -> Self {
        Self { rows: 4, cols: 4 }
    }
}

/// Full configuration of a training accelerator instance.
///
/// The paper's four comparison designs (MN-Acc, RC-Acc, MNShift-Acc, Shift-BNN) are all
/// instances of this structure with different `mapping` / `lfsr_reversion` combinations and are
/// provided as presets by the `shift-bnn` crate.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Human-readable design name.
    pub name: String,
    /// Computation mapping scheme of each PE tile.
    pub mapping: MappingKind,
    /// Whether ε is regenerated locally by LFSR reversed shifting (true) or stored off-chip
    /// between stages (false).
    pub lfsr_reversion: bool,
    /// Number of Sample Processing Units; each trains one sampled model at a time.
    pub spus: usize,
    /// PE tile inside each SPU.
    pub pe_tile: PeTile,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Bytes per value of the training datapath (2 for the paper's 16-bit configuration).
    pub precision_bytes: usize,
    /// Weight-parameter buffer capacity in KiB (shared across SPUs).
    pub weight_buffer_kib: usize,
    /// Per-SPU neuron buffer capacity in KiB (NBin + NBout combined).
    pub neuron_buffer_kib: usize,
    /// Off-chip DRAM bandwidth in GiB/s.
    pub dram_bandwidth_gib_s: f64,
    /// LFSR width of each GRNG slice.
    pub lfsr_width: usize,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self {
            name: "RC-Acc".to_string(),
            mapping: MappingKind::Rc,
            lfsr_reversion: false,
            spus: 16,
            pe_tile: PeTile::default(),
            frequency_mhz: 200.0,
            precision_bytes: 2,
            weight_buffer_kib: 512,
            neuron_buffer_kib: 64,
            dram_bandwidth_gib_s: 12.8,
            lfsr_width: 256,
        }
    }
}

impl AcceleratorConfig {
    /// Total number of PEs across all SPUs.
    pub fn total_pes(&self) -> usize {
        self.spus * self.pe_tile.count()
    }

    /// Peak MAC throughput in operations per second.
    pub fn peak_macs_per_second(&self) -> f64 {
        self.total_pes() as f64 * self.frequency_mhz * 1e6
    }

    /// Peak throughput in GOPS, counting one MAC as two operations (multiply + add), the
    /// convention the paper's GOPS/W metric uses.
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.peak_macs_per_second() / 1e9
    }

    /// DRAM bandwidth in bytes per clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gib_s * 1024.0 * 1024.0 * 1024.0 / (self.frequency_mhz * 1e6)
    }

    /// Duration of one clock cycle in seconds.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / (self.frequency_mhz * 1e6)
    }

    /// Per-SPU neuron buffer capacity in bytes.
    pub fn neuron_buffer_bytes(&self) -> u64 {
        self.neuron_buffer_kib as u64 * 1024
    }

    /// Weight-parameter buffer capacity in bytes.
    pub fn weight_buffer_bytes(&self) -> u64 {
        self.weight_buffer_kib as u64 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_dimensions() {
        let cfg = AcceleratorConfig::default();
        assert_eq!(cfg.spus, 16);
        assert_eq!(cfg.pe_tile.count(), 16);
        assert_eq!(cfg.total_pes(), 256);
        assert_eq!(cfg.frequency_mhz, 200.0);
        assert_eq!(cfg.precision_bytes, 2);
        assert_eq!(cfg.lfsr_width, 256);
    }

    #[test]
    fn peak_rates_follow_from_pes_and_frequency() {
        let cfg = AcceleratorConfig::default();
        assert_eq!(cfg.peak_macs_per_second(), 256.0 * 200.0e6);
        assert!((cfg.peak_gops() - 102.4).abs() < 1e-9);
    }

    #[test]
    fn dram_bytes_per_cycle_is_bandwidth_over_frequency() {
        let cfg = AcceleratorConfig::default();
        let expected = 12.8 * 1024.0 * 1024.0 * 1024.0 / 200.0e6;
        assert!((cfg.dram_bytes_per_cycle() - expected).abs() < 1e-9);
    }

    #[test]
    fn buffer_capacities_convert_to_bytes() {
        let cfg = AcceleratorConfig::default();
        assert_eq!(cfg.weight_buffer_bytes(), 512 * 1024);
        assert_eq!(cfg.neuron_buffer_bytes(), 64 * 1024);
        assert!(cfg.cycle_time_s() > 0.0);
    }
}
