//! Cycle-level micro-simulation of one RC-mapped PE tile.
//!
//! The analytic model in [`crate::simulate`] derives cycle counts from utilization formulas.
//! This module cross-checks those formulas by actually *executing* a convolutional layer the way
//! a Shift-BNN SPU does (Fig. 8 of the paper): output neurons are tiled onto the PE array, one
//! sampled weight is broadcast per cycle, every active PE performs one MAC, and the sampled
//! weights come from a GRNG slice — generated forward during the forward stage and reconstructed
//! by reversed shifting during the backward stage. Because it produces real numerical outputs,
//! the micro-simulator is also validated against the reference convolution of `bnn-tensor`.

use crate::config::PeTile;
use bnn_lfsr::Grng;
use bnn_tensor::conv::ConvGeometry;
use bnn_tensor::Tensor;

/// Result of micro-simulating one convolution on the PE tile.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrosimResult {
    /// The computed output feature map `[M, OH, OW]`.
    pub output: Tensor,
    /// Cycles taken (one broadcast weight per cycle per output tile).
    pub cycles: u64,
    /// MAC operations actually performed (idle PEs in partial tiles do not count).
    pub macs: u64,
    /// Input-neuron buffer reads performed by the shift-unit array / crossbar.
    pub neuron_reads: u64,
    /// The sampled weights used, in generation order (for cross-stage comparison).
    pub sampled_weights: Vec<f32>,
}

/// A cycle-level model of one SPU's RC-mapped PE tile with its GRNG slice.
#[derive(Debug)]
pub struct RcTileSimulator {
    tile: PeTile,
}

impl RcTileSimulator {
    /// Creates a simulator for a PE tile of the given dimensions.
    pub fn new(tile: PeTile) -> Self {
        Self { tile }
    }

    /// The modelled PE tile.
    pub fn tile(&self) -> &PeTile {
        &self.tile
    }

    /// Analytic cycle count for a forward convolution: one cycle per weight per output tile.
    pub fn analytic_forward_cycles(&self, geom: &ConvGeometry, out_h: usize, out_w: usize) -> u64 {
        let tiles_r = out_h.div_ceil(self.tile.rows) as u64;
        let tiles_c = out_w.div_ceil(self.tile.cols) as u64;
        let weights = (geom.out_channels * geom.in_channels * geom.kernel * geom.kernel) as u64;
        weights * tiles_r * tiles_c
    }

    /// Runs the forward stage of one convolutional layer for one sampled model.
    ///
    /// Weights are sampled on the fly as `w = μ + ε·σ`, one ε per weight, drawn from `grng` in
    /// the canonical order (output channel, input channel, kernel row, kernel column) — the same
    /// order the backward stage will retrieve them in reverse.
    ///
    /// # Panics
    ///
    /// Panics if `mu`/`sigma` do not have shape `[M, N, K, K]` or the input does not have
    /// `geom.in_channels` channels, or if `grng` is not in forward mode.
    pub fn forward_conv(
        &self,
        geom: &ConvGeometry,
        input: &Tensor,
        mu: &Tensor,
        sigma: &Tensor,
        grng: &mut Grng,
    ) -> MicrosimResult {
        let (m, n, k) = (geom.out_channels, geom.in_channels, geom.kernel);
        assert_eq!(mu.shape(), &[m, n, k, k], "mu must be [M, N, K, K]");
        assert_eq!(sigma.shape(), mu.shape(), "sigma must match mu");
        assert_eq!(input.shape()[0], n, "input channel count mismatch");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = geom.output_size(h, w);

        // Sample the whole kernel set in generation order; the hardware interleaves this with
        // the broadcast, but the ε order is identical.
        let mut sampled = Vec::with_capacity(m * n * k * k);
        for om in 0..m {
            for ic in 0..n {
                for ky in 0..k {
                    for kx in 0..k {
                        let e = grng.next_epsilon() as f32;
                        let widx = [om, ic, ky, kx];
                        sampled.push(mu.at(&widx) + e * sigma.at(&widx));
                    }
                }
            }
        }

        let mut output = Tensor::zeros(&[m, oh, ow]);
        let mut cycles = 0u64;
        let mut macs = 0u64;
        let mut neuron_reads = 0u64;
        let pad = geom.padding as isize;
        let stride = geom.stride as isize;

        // Tile the output feature map over the PE array; within a tile, broadcast one weight per
        // cycle and let every mapped PE accumulate its partial sum.
        for tile_r in (0..oh).step_by(self.tile.rows) {
            for tile_c in (0..ow).step_by(self.tile.cols) {
                for om in 0..m {
                    for ic in 0..n {
                        for ky in 0..k {
                            for kx in 0..k {
                                cycles += 1;
                                let wv = sampled[((om * n + ic) * k + ky) * k + kx];
                                for pr in 0..self.tile.rows {
                                    for pc in 0..self.tile.cols {
                                        let oy = tile_r + pr;
                                        let ox = tile_c + pc;
                                        if oy >= oh || ox >= ow {
                                            continue; // idle PE in a partial tile
                                        }
                                        let iy = oy as isize * stride + ky as isize - pad;
                                        let ix = ox as isize * stride + kx as isize - pad;
                                        macs += 1;
                                        if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize
                                        {
                                            continue; // zero padding contributes nothing
                                        }
                                        neuron_reads += 1;
                                        let iv = input.at(&[ic, iy as usize, ix as usize]);
                                        let cur = output.at(&[om, oy, ox]);
                                        output.set(&[om, oy, ox], cur + wv * iv);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        MicrosimResult { output, cycles, macs, neuron_reads, sampled_weights: sampled }
    }

    /// Reconstructs the layer's sampled weights during the backward stage by retrieving ε in
    /// reverse order from the same GRNG (which must have generated them during
    /// [`forward_conv`](Self::forward_conv)). Returns the weights in generation order so they
    /// can be compared against [`MicrosimResult::sampled_weights`].
    ///
    /// # Panics
    ///
    /// Panics if `mu`/`sigma` shapes disagree or the GRNG is not in backward mode.
    pub fn reconstruct_weights_backward(
        &self,
        mu: &Tensor,
        sigma: &Tensor,
        grng: &mut Grng,
    ) -> Vec<f32> {
        assert_eq!(mu.shape(), sigma.shape());
        let count = mu.len();
        let mut reconstructed = vec![0.0f32; count];
        // ε come back last-generated-first; walk the weight indices in reverse.
        for idx in (0..count).rev() {
            let e = grng.retrieve_epsilon() as f32;
            reconstructed[idx] = mu.data()[idx] + e * sigma.data()[idx];
        }
        reconstructed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_lfsr::GrngMode;
    use bnn_tensor::conv::conv2d_forward;

    fn geometry() -> ConvGeometry {
        ConvGeometry { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 }
    }

    fn params(geom: &ConvGeometry) -> (Tensor, Tensor) {
        let shape = [geom.out_channels, geom.in_channels, geom.kernel, geom.kernel];
        let count: usize = shape.iter().product();
        let mu = Tensor::from_vec(
            shape.to_vec(),
            (0..count).map(|i| ((i as f32) * 0.13).sin() * 0.4).collect(),
        )
        .unwrap();
        let sigma = Tensor::filled(&shape, 0.05);
        (mu, sigma)
    }

    #[test]
    fn microsim_matches_reference_convolution() {
        let geom = geometry();
        let sim = RcTileSimulator::new(PeTile { rows: 4, cols: 4 });
        let (mu, sigma) = params(&geom);
        let input =
            Tensor::from_vec(vec![2, 6, 6], (0..72).map(|i| ((i as f32) * 0.21).cos()).collect())
                .unwrap();
        let mut grng = Grng::shift_bnn_default(55).unwrap();
        let result = sim.forward_conv(&geom, &input, &mu, &sigma, &mut grng);

        // Rebuild the weight tensor the simulator sampled and compare against bnn-tensor's conv.
        let weights =
            Tensor::from_vec(mu.shape().to_vec(), result.sampled_weights.clone()).unwrap();
        let bias = Tensor::zeros(&[geom.out_channels]);
        let reference = conv2d_forward(&geom, &input, &weights, &bias).unwrap();
        for (a, b) in result.output.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn microsim_cycles_match_analytic_formula() {
        let geom = geometry();
        let sim = RcTileSimulator::new(PeTile { rows: 4, cols: 4 });
        let (mu, sigma) = params(&geom);
        for size in [4usize, 6, 8, 10] {
            let input = Tensor::filled(&[2, size, size], 1.0);
            let mut grng = Grng::shift_bnn_default(9).unwrap();
            let result = sim.forward_conv(&geom, &input, &mu, &sigma, &mut grng);
            let (oh, ow) = geom.output_size(size, size);
            assert_eq!(result.cycles, sim.analytic_forward_cycles(&geom, oh, ow), "size {size}");
        }
    }

    #[test]
    fn macs_account_for_partial_tiles() {
        let geom = geometry();
        let sim = RcTileSimulator::new(PeTile { rows: 4, cols: 4 });
        let (mu, sigma) = params(&geom);
        // 6x6 output does not divide evenly by 4, so MACs < cycles × 16 but = weights × outputs.
        let input = Tensor::filled(&[2, 6, 6], 1.0);
        let mut grng = Grng::shift_bnn_default(1).unwrap();
        let result = sim.forward_conv(&geom, &input, &mu, &sigma, &mut grng);
        let weights = (3 * 2 * 9) as u64;
        assert_eq!(result.macs, weights * 36);
        assert!(result.macs < result.cycles * 16);
        assert!(result.neuron_reads <= result.macs);
    }

    #[test]
    fn backward_reconstruction_reproduces_forward_weights_exactly() {
        let geom = geometry();
        let sim = RcTileSimulator::new(PeTile { rows: 4, cols: 4 });
        let (mu, sigma) = params(&geom);
        let input = Tensor::filled(&[2, 8, 8], 0.3);
        let mut grng = Grng::shift_bnn_default(77).unwrap();
        let result = sim.forward_conv(&geom, &input, &mu, &sigma, &mut grng);
        grng.set_mode(GrngMode::Backward);
        let reconstructed = sim.reconstruct_weights_backward(&mu, &sigma, &mut grng);
        assert_eq!(reconstructed, result.sampled_weights);
    }
}
