//! Off-chip traffic and memory-footprint accounting, broken down by operand class.

/// DRAM traffic (in values) attributed to the three operand classes of BNN training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficByOperand {
    /// Weight parameters (μ, σ) and their gradients.
    pub weights: u64,
    /// Gaussian random variables ε.
    pub epsilon: u64,
    /// Input/output feature maps and errors.
    pub features: u64,
}

impl TrafficByOperand {
    /// Total number of values transferred.
    pub fn total(&self) -> u64 {
        self.weights + self.epsilon + self.features
    }

    /// Total bytes transferred at the given precision.
    pub fn bytes(&self, bytes_per_value: usize) -> u64 {
        self.total() * bytes_per_value as u64
    }

    /// Adds another traffic record into this one.
    pub fn accumulate(&mut self, other: &TrafficByOperand) {
        self.weights += other.weights;
        self.epsilon += other.epsilon;
        self.features += other.features;
    }

    /// Fractions `(weights, epsilon, features)` of the total (all zero if there is no traffic).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (self.weights as f64 / t, self.epsilon as f64 / t, self.features as f64 / t)
    }
}

/// Peak off-chip memory footprint (in bytes) of a training iteration, by operand class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FootprintBreakdown {
    /// Weight parameters and gradients resident in DRAM.
    pub weights_bytes: u64,
    /// Stored ε (zero when LFSR reversion is used).
    pub epsilon_bytes: u64,
    /// Feature maps / errors that must persist across stages.
    pub features_bytes: u64,
}

impl FootprintBreakdown {
    /// Total footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.weights_bytes + self.epsilon_bytes + self.features_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_bytes_and_fractions() {
        let t = TrafficByOperand { weights: 10, epsilon: 70, features: 20 };
        assert_eq!(t.total(), 100);
        assert_eq!(t.bytes(2), 200);
        let (w, e, f) = t.fractions();
        assert!((w - 0.1).abs() < 1e-12 && (e - 0.7).abs() < 1e-12 && (f - 0.2).abs() < 1e-12);
    }

    #[test]
    fn accumulate_is_componentwise() {
        let mut a = TrafficByOperand { weights: 1, epsilon: 2, features: 3 };
        a.accumulate(&TrafficByOperand { weights: 10, epsilon: 20, features: 30 });
        assert_eq!(a, TrafficByOperand { weights: 11, epsilon: 22, features: 33 });
    }

    #[test]
    fn empty_traffic_has_zero_fractions() {
        assert_eq!(TrafficByOperand::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn footprint_totals() {
        let f = FootprintBreakdown { weights_bytes: 5, epsilon_bytes: 10, features_bytes: 1 };
        assert_eq!(f.total_bytes(), 16);
    }
}
