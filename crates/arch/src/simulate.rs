//! The analytic training-run simulator: per-layer, per-stage traffic, latency and energy.
//!
//! For every weight-bearing layer and every training stage (FW, BW, GC) the simulator derives:
//!
//! * **DRAM traffic** per operand class — weight parameters are streamed once per stage (they
//!   are reused across all SPUs/samples through the weight parameter buffer), feature maps and
//!   errors move once per sample, and ε moves `S × weights` values per crossing stage *unless*
//!   the design retrieves them locally by LFSR reversion;
//! * **compute cycles** from the MAC count, the PE-tile utilization of the configured mapping
//!   and the sample-level parallelism across SPUs;
//! * **memory cycles** from the DRAM byte volume and bandwidth; compute and memory overlap via
//!   double buffering, so a stage's latency is the maximum of the two;
//! * **energy** from the per-operation constants of [`EnergyModel`], with the mapping-specific
//!   reversion overheads applied to the backward/gradient stages.

use crate::config::AcceleratorConfig;
use crate::energy::{pj_to_mj, EnergyBreakdown, EnergyModel};
use crate::mapping::Stage;
use crate::traffic::{FootprintBreakdown, TrafficByOperand};
use bnn_models::workload::{LayerVolume, ModelVolume};
use bnn_models::ModelConfig;

/// Simulation result for one layer and one training stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageReport {
    /// Which stage this is.
    pub stage: Stage,
    /// MAC operations executed.
    pub macs: u64,
    /// Cycles the PE array is busy.
    pub compute_cycles: u64,
    /// Cycles the DRAM interface is busy.
    pub memory_cycles: u64,
    /// Stage latency (compute and memory overlap via double buffering).
    pub latency_cycles: u64,
    /// DRAM traffic in values (reads + writes).
    pub dram_traffic: TrafficByOperand,
    /// On-chip buffer accesses in values.
    pub sram_accesses: u64,
    /// GRNG events (LFSR shifts producing or reproducing an ε).
    pub grng_events: u64,
    /// Dynamic energy of the stage (static energy is added at the run level).
    pub energy: EnergyBreakdown,
}

/// Simulation result for one layer across all three stages.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Whether the layer is fully connected (the paper's latency analysis distinguishes these).
    pub fully_connected: bool,
    /// Per-stage results.
    pub stages: Vec<StageReport>,
}

impl LayerReport {
    /// Total latency of the layer across stages.
    pub fn latency_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.latency_cycles).sum()
    }

    /// Total DRAM traffic of the layer.
    pub fn dram_traffic(&self) -> TrafficByOperand {
        let mut t = TrafficByOperand::default();
        for s in &self.stages {
            t.accumulate(&s.dram_traffic);
        }
        t
    }
}

/// Full result of simulating one training iteration (one example, `S` samples) on a design.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRunReport {
    /// Design name (e.g. `"Shift-BNN"`).
    pub design: String,
    /// Model name (e.g. `"B-VGG"`).
    pub model: String,
    /// Sample count `S`.
    pub samples: usize,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
    /// Total energy including static energy.
    pub energy: EnergyBreakdown,
    /// End-to-end latency in cycles.
    pub latency_cycles: u64,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Total DRAM traffic in values.
    pub dram_traffic: TrafficByOperand,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Peak off-chip memory footprint.
    pub footprint: FootprintBreakdown,
    /// Total MAC operations.
    pub total_macs: u64,
}

impl TrainingRunReport {
    /// Achieved throughput in GOPS (two operations per MAC).
    pub fn gops(&self) -> f64 {
        if self.latency_s > 0.0 {
            2.0 * self.total_macs as f64 / self.latency_s / 1e9
        } else {
            0.0
        }
    }

    /// Average power in watts.
    pub fn average_power_w(&self) -> f64 {
        if self.latency_s > 0.0 {
            self.energy.total_mj() * 1e-3 / self.latency_s
        } else {
            0.0
        }
    }

    /// Energy efficiency in GOPS per watt — the paper's Fig. 12 metric.
    pub fn gops_per_watt(&self) -> f64 {
        let p = self.average_power_w();
        if p > 0.0 {
            self.gops() / p
        } else {
            0.0
        }
    }

    /// Total energy in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }
}

fn ceil_div(a: u64, b: u64) -> u64 {
    if b == 0 {
        0
    } else {
        a.div_ceil(b)
    }
}

/// Analytic compute cycles of one stage of `volume` on `config`: the MAC count spread over the
/// PE tile at the mapping's utilization, with Monte-Carlo samples parallelized across SPUs.
///
/// Exposed so the cycle-level micro-simulator (and its cross-validation property tests) can
/// check the formula against actually-executed tile schedules; `simulate_training` uses it for
/// every stage report.
pub fn analytic_compute_cycles(
    config: &AcceleratorConfig,
    volume: &LayerVolume,
    bayesian: bool,
) -> u64 {
    let tile = &config.pe_tile;
    let util = config.mapping.utilization(&volume.dims, tile).max(1e-3);
    let samples = volume.epsilon_values.checked_div(volume.dims.weights()).unwrap_or(0).max(1);
    let samples = if bayesian { samples } else { 1 };
    let per_sample_macs = volume.stage_macs / samples;
    let per_sample_cycles = (per_sample_macs as f64 / (tile.count() as f64 * util)).ceil() as u64;
    per_sample_cycles * ceil_div(samples, config.spus as u64)
}

fn stage_dram_traffic(
    stage: Stage,
    volume: &LayerVolume,
    config: &AcceleratorConfig,
    bayesian: bool,
) -> TrafficByOperand {
    let weights = match stage {
        // μ and σ are read once per stage (reused across SPUs through the WPB).
        Stage::Forward | Stage::Backward => volume.weight_param_values,
        // The gradient stage reads the parameters and writes their gradients back.
        Stage::GradientCalc => 2 * volume.weight_param_values,
    };
    let epsilon = if bayesian && !config.lfsr_reversion {
        // Stored after FW, fetched again during BW (weight reconstruction) and GC (Δσ).
        volume.epsilon_values
    } else {
        0
    };
    let base_features = match stage {
        // Read the input activations, write the output activations.
        Stage::Forward => volume.input_values + volume.output_values,
        // Read the output-side errors, write the input-side errors.
        Stage::Backward => volume.output_values + volume.input_values,
        // Read the stored activations and the errors to form the likelihood gradient.
        Stage::GradientCalc => volume.input_values + volume.output_values,
    };
    // Mappings with poorer on-chip reuse of feature maps re-fetch them from DRAM more often.
    let features = (base_features as f64 * config.mapping.feature_traffic_factor()).round() as u64;
    TrafficByOperand { weights, epsilon, features }
}

fn stage_report(
    stage: Stage,
    volume: &LayerVolume,
    config: &AcceleratorConfig,
    energy_model: &EnergyModel,
    bayesian: bool,
) -> StageReport {
    // Compute cycles: samples are spread over the SPUs; each SPU processes one sampled model
    // with `tile` PEs at the mapping's utilization.
    let compute_cycles = analytic_compute_cycles(config, volume, bayesian);

    // DRAM traffic and the resulting memory cycles.
    let dram_traffic = stage_dram_traffic(stage, volume, config, bayesian);
    let dram_bytes = dram_traffic.bytes(config.precision_bytes);
    let memory_cycles = (dram_bytes as f64 / config.dram_bytes_per_cycle()).ceil() as u64;

    // GRNG events: ε are generated on chip during FW in every design; reversion designs shift
    // the LFSRs again (backwards) during BW to reproduce them.
    let grng_events = if !bayesian {
        0
    } else {
        match (stage, config.lfsr_reversion) {
            (Stage::Forward, _) => volume.epsilon_values,
            (Stage::Backward, true) => volume.epsilon_values,
            _ => 0,
        }
    };

    // On-chip buffer accesses: everything crossing DRAM passes through a buffer, input neurons
    // are staged once per stage through NBin/the shift-unit array, and partial sums round-trip
    // NBout once per output value. MAC-level operand movement stays in PE-local registers.
    let mut sram_accesses = dram_traffic.total() + volume.input_values + 2 * volume.output_values;

    // Mapping-specific reversion overheads apply to the stages that consume retrieved ε.
    let overheads = config.mapping.reversion_overheads();
    let mut compute_energy_factor = 1.0;
    if config.lfsr_reversion && stage.reuses_epsilon() {
        compute_energy_factor = overheads.compute_energy;
        sram_accesses = (sram_accesses as f64 * overheads.sram_energy) as u64;
    }

    let energy = EnergyBreakdown {
        dram_mj: pj_to_mj(dram_traffic.total(), energy_model.dram_pj_per_value),
        sram_mj: pj_to_mj(sram_accesses, energy_model.sram_pj_per_value),
        compute_mj: pj_to_mj(volume.stage_macs, energy_model.mac_pj) * compute_energy_factor,
        grng_mj: pj_to_mj(grng_events, energy_model.grng_pj_per_sample),
        static_mj: 0.0,
    };

    StageReport {
        stage,
        macs: volume.stage_macs,
        compute_cycles,
        memory_cycles,
        latency_cycles: compute_cycles.max(memory_cycles),
        dram_traffic,
        sram_accesses,
        grng_events,
        energy,
    }
}

/// Peak memory footprint of a training iteration on `config`.
fn footprint(volume: &ModelVolume, config: &AcceleratorConfig) -> FootprintBreakdown {
    let bytes = config.precision_bytes as u64;
    let weights: u64 = volume.layers.iter().map(|l| l.weight_param_values).sum::<u64>();
    // Parameters plus their gradients must reside in DRAM.
    let weights_bytes = 2 * weights * bytes;
    let epsilon_bytes =
        if config.lfsr_reversion { 0 } else { volume.total_epsilon_values() * bytes };
    // Activations of every layer persist until the gradient stage; errors are transient per
    // layer pair, so the dominant persistent term is the activations (input side of each layer).
    let features_bytes: u64 =
        volume.layers.iter().map(|l| l.input_values + l.output_values).sum::<u64>() * bytes / 2;
    FootprintBreakdown { weights_bytes, epsilon_bytes, features_bytes }
}

/// Simulates one training iteration (one input example, `samples` Monte-Carlo samples) of
/// `model` on the accelerator described by `config`.
///
/// The returned report contains per-layer, per-stage detail plus run-level energy, latency,
/// DRAM-access and footprint totals.
pub fn simulate_training(
    config: &AcceleratorConfig,
    model: &ModelConfig,
    samples: usize,
    energy_model: &EnergyModel,
) -> TrainingRunReport {
    let volume = ModelVolume::for_model(model, samples);
    let mut layers = Vec::with_capacity(volume.layers.len());
    let mut total_energy = EnergyBreakdown::default();
    let mut total_traffic = TrafficByOperand::default();
    let mut latency_cycles = 0u64;
    let mut total_macs = 0u64;

    for layer_volume in &volume.layers {
        let mut stages = Vec::with_capacity(3);
        for stage in Stage::all() {
            let report = stage_report(stage, layer_volume, config, energy_model, model.bayesian);
            total_energy.accumulate(&report.energy);
            total_traffic.accumulate(&report.dram_traffic);
            latency_cycles += report.latency_cycles;
            total_macs += report.macs;
            stages.push(report);
        }
        layers.push(LayerReport {
            name: layer_volume.dims.name.clone(),
            fully_connected: layer_volume.dims.is_fully_connected(),
            stages,
        });
    }

    let latency_s = latency_cycles as f64 * config.cycle_time_s();
    total_energy.static_mj = energy_model.static_power_w * latency_s * 1e3;

    TrainingRunReport {
        design: config.name.clone(),
        model: model.name.clone(),
        samples,
        layers,
        energy: total_energy,
        latency_cycles,
        latency_s,
        dram_bytes: total_traffic.bytes(config.precision_bytes),
        dram_traffic: total_traffic,
        footprint: footprint(&volume, config),
        total_macs,
    }
}

/// The sweep engine executes simulations on worker threads and aggregates their reports, so
/// every report type must stay `Send + Clone`; this compile-time assertion pins the contract.
#[allow(dead_code)]
fn _reports_are_send_and_clone() {
    fn assert_send_clone<T: Send + Clone>() {}
    assert_send_clone::<StageReport>();
    assert_send_clone::<LayerReport>();
    assert_send_clone::<TrainingRunReport>();
    assert_send_clone::<TrafficByOperand>();
    assert_send_clone::<FootprintBreakdown>();
    assert_send_clone::<EnergyBreakdown>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingKind;
    use bnn_models::ModelKind;

    fn rc_config(reversion: bool) -> AcceleratorConfig {
        AcceleratorConfig {
            name: if reversion { "Shift-BNN".into() } else { "RC-Acc".into() },
            lfsr_reversion: reversion,
            mapping: MappingKind::Rc,
            ..AcceleratorConfig::default()
        }
    }

    #[test]
    fn reversion_eliminates_all_epsilon_traffic() {
        let model = ModelKind::LeNet.bnn();
        let base = simulate_training(&rc_config(false), &model, 16, &EnergyModel::default());
        let shift = simulate_training(&rc_config(true), &model, 16, &EnergyModel::default());
        assert!(base.dram_traffic.epsilon > 0);
        assert_eq!(shift.dram_traffic.epsilon, 0);
        assert_eq!(base.dram_traffic.weights, shift.dram_traffic.weights);
        assert_eq!(base.dram_traffic.features, shift.dram_traffic.features);
        assert!(shift.total_energy_mj() < base.total_energy_mj());
        assert!(shift.latency_cycles <= base.latency_cycles);
        assert_eq!(shift.footprint.epsilon_bytes, 0);
        assert!(base.footprint.epsilon_bytes > 0);
    }

    #[test]
    fn epsilon_dominates_baseline_traffic_at_16_samples() {
        // Fig. 3: ε is the majority of off-chip traffic for every BNN model at S = 16.
        for kind in ModelKind::all() {
            let report =
                simulate_training(&rc_config(false), &kind.bnn(), 16, &EnergyModel::default());
            let (_, e, _) = report.dram_traffic.fractions();
            assert!(e > 0.5, "{}: epsilon fraction {e}", kind.paper_name());
        }
    }

    #[test]
    fn bnn_moves_an_order_of_magnitude_more_data_than_dnn() {
        // Fig. 2: at S = 8 the BNN's traffic is roughly 9x its DNN counterpart on average.
        let kind = ModelKind::Mlp;
        let dnn = simulate_training(&rc_config(false), &kind.dnn(), 1, &EnergyModel::default());
        let bnn = simulate_training(&rc_config(false), &kind.bnn(), 8, &EnergyModel::default());
        let ratio = bnn.dram_bytes as f64 / dnn.dram_bytes as f64;
        assert!(ratio > 4.0, "traffic ratio {ratio}");
    }

    #[test]
    fn fc_layers_are_memory_bound_and_conv_layers_compute_bound_on_baseline() {
        let model = ModelKind::AlexNet.bnn();
        let report = simulate_training(&rc_config(false), &model, 16, &EnergyModel::default());
        let conv_layer = &report.layers[2]; // conv3
        let fc_layer = report.layers.iter().find(|l| l.fully_connected).unwrap();
        let conv_fw = &conv_layer.stages[0];
        let fc_fw = &fc_layer.stages[0];
        assert!(conv_fw.compute_cycles >= conv_fw.memory_cycles, "conv should be compute bound");
        assert!(fc_fw.memory_cycles > fc_fw.compute_cycles, "fc should be memory bound");
    }

    #[test]
    fn latency_and_power_metrics_are_positive_and_consistent() {
        let report = simulate_training(
            &rc_config(true),
            &ModelKind::LeNet.bnn(),
            8,
            &EnergyModel::default(),
        );
        assert!(report.latency_s > 0.0);
        assert!(report.gops() > 0.0);
        assert!(report.average_power_w() > 0.0);
        let eff = report.gops_per_watt();
        assert!((eff - report.gops() / report.average_power_w()).abs() < 1e-9);
    }

    #[test]
    fn larger_sample_counts_increase_traffic_linearly_for_epsilon() {
        let model = ModelKind::LeNet.bnn();
        let cfg = rc_config(false);
        let r8 = simulate_training(&cfg, &model, 8, &EnergyModel::default());
        let r32 = simulate_training(&cfg, &model, 32, &EnergyModel::default());
        assert_eq!(r8.dram_traffic.epsilon * 4, r32.dram_traffic.epsilon);
        assert_eq!(r8.dram_traffic.weights, r32.dram_traffic.weights);
    }

    #[test]
    fn per_layer_reports_cover_all_layers_and_stages() {
        let model = ModelKind::LeNet.bnn();
        let report = simulate_training(&rc_config(true), &model, 4, &EnergyModel::default());
        assert_eq!(report.layers.len(), model.layer_count());
        assert!(report.layers.iter().all(|l| l.stages.len() == 3));
        let summed: u64 = report.layers.iter().map(|l| l.latency_cycles()).sum();
        assert_eq!(summed, report.latency_cycles);
    }
}
