//! Deterministic tick-domain observability for the Shift-BNN serving stack.
//!
//! Three layers, all of them pure functions of simulated ticks — no wall-clock read ever
//! happens on a recorded path, so traces, metrics and profiles are byte-identical across
//! machines, worker counts and shard layouts:
//!
//! 1. **Structured request tracing** ([`event`], [`recorder`], [`span`]) — the serving
//!    stack's routing loop and engines are generic over a [`Recorder`] that receives one
//!    tick-stamped [`Event`] per stage transition (admit → queue → batch-close → dispatch →
//!    compute → retry/escalate/degrade → answer-or-shed). The [`NullRecorder`] compiles the
//!    whole path away; [`assemble_traces`] rebuilds per-request span trees and attributes
//!    100% of every answered request's end-to-end latency to named stages.
//! 2. **Metrics registry** ([`metrics`]) — counters, gauges and fixed-bucket tick
//!    histograms with deterministic merge order, exported as `sweep::json` and as a
//!    Prometheus-style text exposition.
//! 3. **Profiling hooks** ([`profile`]) — per-kernel-tier GEMM MAC/call counters, ε-word
//!    generation counts and scratch high-water marks, snapshot around a request via
//!    [`ProfileSnapshot`].
//!
//! [`export`] is the single serialization path for decision events: the serving crate's
//! committed shed/escalation/scale and fault-trace digests are produced here, byte-for-byte
//! in the historical layouts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod span;

pub use event::Event;
pub use metrics::{Registry, TickHistogram, HISTOGRAM_BUCKETS};
pub use profile::{ProfileSnapshot, TIER_LABELS};
pub use recorder::{NullRecorder, Recorder, TraceRecorder};
pub use span::{assemble_traces, percentile, RequestTrace, SpanNode, StageBreakdown, STAGES};
