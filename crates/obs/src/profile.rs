//! Hot-path profiling snapshots: per-`KernelTier` GEMM MAC/call counters, ε-word
//! generation counts, and scratch-arena high-water marks.
//!
//! The raw counters live next to the hot code they count (`bnn_tensor::profile`,
//! `bnn_lfsr::profile`) as thread-local plain `Cell`s — bumping one is a register-width
//! store with no atomics and no heap traffic, so the hooks are safe to leave compiled in.
//! This module holds the *presentation* types: a [`ProfileSnapshot`] is a point-in-time
//! copy of those counters, and subtracting two snapshots around a request yields its
//! [`ProfileSnapshot::delta_since`] — the per-request "what did this answer cost in MACs,
//! ε words and scratch bytes" breakdown the obs benchmark commits.
//!
//! Counters are per-thread by design: deterministic profiled replays run the replica on the
//! calling thread. GEMM hooks record the full `m·k·n` MAC volume *before* any worker split,
//! so tiered-parallel calls still attribute their whole volume to the caller.

use shift_bnn::sweep::json::Json;

/// Kernel-tier labels in the tensor crate's oracle-first order — index `i` of the per-tier
/// arrays below counts tier `TIER_LABELS[i]`.
pub const TIER_LABELS: [&str; 4] = ["reference", "blocked", "simd", "fastmath"];

/// A point-in-time copy of the thread-local hot-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// GEMM invocations per kernel tier (in [`TIER_LABELS`] order).
    pub gemm_calls: [u64; 4],
    /// Multiply-accumulate volume (`m·k·n` summed) per kernel tier.
    pub gemm_macs: [u64; 4],
    /// ε values drawn from the GRNG (each LFSR word yields 64 of them on the batch path).
    pub epsilon_values: u64,
    /// Scratch-arena high-water mark in `f32` slots since the last reset.
    pub scratch_high_water: u64,
}

impl ProfileSnapshot {
    /// The counter movement between an `earlier` snapshot and this one. Monotone counters
    /// subtract; the high-water mark carries this snapshot's value (callers reset the mark
    /// before the measured region, so it *is* the region's peak).
    pub fn delta_since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        let mut delta = *self;
        for i in 0..4 {
            delta.gemm_calls[i] -= earlier.gemm_calls[i];
            delta.gemm_macs[i] -= earlier.gemm_macs[i];
        }
        delta.epsilon_values -= earlier.epsilon_values;
        delta
    }

    /// Total GEMM calls across tiers.
    pub fn total_gemm_calls(&self) -> u64 {
        self.gemm_calls.iter().sum()
    }

    /// Total MAC volume across tiers.
    pub fn total_gemm_macs(&self) -> u64 {
        self.gemm_macs.iter().sum()
    }

    /// The snapshot as a `sweep::json` document (all four tiers, fixed order).
    pub fn to_json(&self) -> Json {
        let tiers = TIER_LABELS.iter().enumerate().map(|(i, label)| {
            (
                label.to_string(),
                Json::obj([
                    ("calls", Json::UInt(self.gemm_calls[i])),
                    ("macs", Json::UInt(self.gemm_macs[i])),
                ]),
            )
        });
        Json::obj([
            ("gemm", Json::obj(tiers.collect::<Vec<_>>())),
            ("gemm_calls_total", Json::UInt(self.total_gemm_calls())),
            ("gemm_macs_total", Json::UInt(self.total_gemm_macs())),
            ("epsilon_values", Json::UInt(self.epsilon_values)),
            ("scratch_high_water", Json::UInt(self.scratch_high_water)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_monotone_counters_and_keeps_the_peak() {
        let before = ProfileSnapshot {
            gemm_calls: [0, 0, 3, 0],
            gemm_macs: [0, 0, 3000, 0],
            epsilon_values: 128,
            scratch_high_water: 0,
        };
        let after = ProfileSnapshot {
            gemm_calls: [0, 0, 5, 1],
            gemm_macs: [0, 0, 5000, 400],
            epsilon_values: 192,
            scratch_high_water: 777,
        };
        let delta = after.delta_since(&before);
        assert_eq!(delta.gemm_calls, [0, 0, 2, 1]);
        assert_eq!(delta.gemm_macs, [0, 0, 2000, 400]);
        assert_eq!(delta.epsilon_values, 64);
        assert_eq!(delta.scratch_high_water, 777);
        assert_eq!(delta.total_gemm_calls(), 3);
        assert_eq!(delta.total_gemm_macs(), 2400);
    }

    #[test]
    fn json_lists_all_tiers_in_fixed_order() {
        let snap = ProfileSnapshot::default();
        let text = snap.to_json().to_compact();
        let mut last = 0;
        for label in TIER_LABELS {
            let at = text.find(&format!("\"{label}\"")).expect("tier present");
            assert!(at > last, "tiers must appear in declaration order");
            last = at;
        }
        assert!(text.contains("\"epsilon_values\":0"));
    }
}
