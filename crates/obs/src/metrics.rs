//! A deterministic metrics registry: counters, gauges, and fixed-bucket tick histograms.
//!
//! Everything here is ordinary integer state keyed by `BTreeMap`, so iteration, export and
//! [`Registry::merge`] are deterministic by construction — merging per-shard registries in
//! shard order yields the same bytes on every machine and at every worker count. Metric
//! names carry Prometheus-style labels inline (`sheds_total{reason="queue_full"}`), which
//! both exporters understand: [`Registry::to_json`] emits a `sweep::json` document and
//! [`Registry::to_prometheus`] a text exposition.
//!
//! Histograms use fixed power-of-two bucket bounds (`1, 2, 4, …, 2^20, +Inf` ticks), so two
//! histograms always merge bucket-for-bucket and the committed summaries never depend on a
//! run-derived bucket layout.

use std::collections::BTreeMap;

use shift_bnn::sweep::json::Json;

use crate::event::Event;
use crate::span::RequestTrace;

/// Number of histogram buckets: upper bounds `2^0 .. 2^20` plus the `+Inf` overflow.
pub const HISTOGRAM_BUCKETS: usize = 22;

/// A fixed-bucket latency histogram over tick values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for TickHistogram {
    fn default() -> TickHistogram {
        TickHistogram::new()
    }
}

impl TickHistogram {
    /// An empty histogram.
    pub fn new() -> TickHistogram {
        TickHistogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: 0, max: 0 }
    }

    fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `index`, `None` for the `+Inf` bucket.
    pub fn bucket_bound(index: usize) -> Option<u64> {
        if index + 1 < HISTOGRAM_BUCKETS {
            Some(1u64 << index)
        } else {
            None
        }
    }

    /// Records one tick value.
    pub fn observe(&mut self, value: u64) {
        self.buckets[TickHistogram::bucket_index(value)] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum += value;
    }

    /// Adds another histogram bucket-for-bucket (bounds are fixed, so this is exact).
    pub fn merge(&mut self, other: &TickHistogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    fn to_json(&self) -> Json {
        let mut buckets = Vec::new();
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let le = match TickHistogram::bucket_bound(i) {
                Some(bound) => Json::UInt(bound),
                None => Json::Str("+Inf".to_string()),
            };
            buckets.push(Json::obj([("le", le), ("count", Json::UInt(count))]));
        }
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("min", Json::UInt(self.min())),
            ("max", Json::UInt(self.max)),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

/// The registry: named counters, gauges and [`TickHistogram`]s.
///
/// Names may carry inline labels — `sheds_total{reason="queue_full"}` — which the
/// Prometheus exposition splits back into label sets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, TickHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raises gauge `name` to `value` if larger (high-water semantics).
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(0);
        if value > *slot {
            *slot = value;
        }
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&TickHistogram> {
        self.histograms.get(name)
    }

    /// Folds another registry in: counters add, gauges take the maximum, histograms merge
    /// bucket-for-bucket. Merging per-shard registries in shard order is deterministic and
    /// order-insensitive for everything except gauge ties (max is commutative too, so the
    /// result is in fact fully order-insensitive).
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += *value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            if *value > *slot {
                *slot = *value;
            }
        }
        for (name, histogram) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(histogram);
        }
    }

    /// Builds the event-derived metrics for one recorded stream: admission/terminal
    /// counters by label, queue-depth and batch-occupancy histograms, fault and scaling
    /// counters. Stage-latency histograms additionally need assembled traces — see
    /// [`Registry::record_traces`].
    pub fn from_events(events: &[Event]) -> Registry {
        let mut reg = Registry::new();
        for event in events {
            match *event {
                Event::Admit { queue_depth, .. } => {
                    reg.inc("requests_admitted_total", 1);
                    reg.observe("queue_depth", queue_depth as u64);
                    reg.gauge_max("queue_depth_high_water", queue_depth as u64);
                }
                Event::BatchClose { .. } | Event::Dispatch { .. } | Event::ComputeDone { .. } => {}
                Event::BatchSeal { members, .. } => {
                    reg.inc("batches_sealed_total", 1);
                    reg.observe("batch_occupancy", members as u64);
                }
                Event::Retry { attempt, .. } => {
                    reg.inc("retries_total", 1);
                    reg.gauge_max("retry_attempt_high_water", attempt as u64);
                }
                Event::Degrade { to, .. } => {
                    reg.inc(&format!("degrades_total{{to=\"{to}\"}}"), 1);
                }
                Event::CheckpointFault { cancelled_swaps, .. } => {
                    reg.inc("checkpoint_faults_total", 1);
                    reg.inc("cancelled_swaps_total", cancelled_swaps as u64);
                }
                Event::Shed { reason, .. } => {
                    reg.inc(&format!("sheds_total{{reason=\"{reason}\"}}"), 1);
                }
                Event::Escalation { admitted, .. } => {
                    reg.inc(&format!("escalations_total{{admitted=\"{admitted}\"}}"), 1);
                }
                Event::Scale { active, .. } => {
                    reg.inc("scale_events_total", 1);
                    reg.set_gauge("active_shards", active as u64);
                }
                Event::Answer { .. } => {
                    reg.inc("answers_total", 1);
                }
            }
        }
        reg
    }

    /// Records per-stage and end-to-end latency histograms from assembled traces
    /// (`stage_ticks{stage="…"}` per named stage, `request_latency_ticks` for answered
    /// requests).
    pub fn record_traces(&mut self, traces: &[RequestTrace]) {
        for trace in traces {
            let b = &trace.breakdown;
            if !b.answered {
                continue;
            }
            self.observe("request_latency_ticks", b.total());
            for (stage, ticks) in crate::span::STAGES.iter().zip(b.stage_ticks()) {
                self.observe(&format!("stage_ticks{{stage=\"{stage}\"}}"), ticks);
            }
        }
    }

    /// The registry as a `sweep::json` document (names in sorted order, so the bytes are
    /// deterministic).
    pub fn to_json(&self) -> Json {
        let counters = self.counters.iter().map(|(name, &value)| (name.clone(), Json::UInt(value)));
        let gauges = self.gauges.iter().map(|(name, &value)| (name.clone(), Json::UInt(value)));
        let histograms =
            self.histograms.iter().map(|(name, histogram)| (name.clone(), histogram.to_json()));
        Json::obj([
            ("counters", Json::obj(counters.collect::<Vec<_>>())),
            ("gauges", Json::obj(gauges.collect::<Vec<_>>())),
            ("histograms", Json::obj(histograms.collect::<Vec<_>>())),
        ])
    }

    /// The registry in Prometheus text exposition format (`# TYPE` per family, cumulative
    /// `_bucket{le=…}` lines plus `_sum`/`_count` per histogram). Deterministic: families
    /// appear in sorted-name order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, family: &str, kind: &str| {
            if family != last_family {
                out.push_str("# TYPE ");
                out.push_str(family);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                last_family = family.to_string();
            }
        };
        for (name, value) in &self.counters {
            let (family, _) = split_labels(name);
            type_line(&mut out, family, "counter");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            let (family, _) = split_labels(name);
            type_line(&mut out, family, "gauge");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, histogram) in &self.histograms {
            let (family, labels) = split_labels(name);
            type_line(&mut out, family, "histogram");
            let mut cumulative = 0u64;
            for (i, &count) in histogram.buckets.iter().enumerate() {
                cumulative += count;
                if count == 0 && i + 1 < HISTOGRAM_BUCKETS {
                    continue;
                }
                let le = match TickHistogram::bucket_bound(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                out.push_str(family);
                out.push_str("_bucket{");
                if !labels.is_empty() {
                    out.push_str(labels);
                    out.push(',');
                }
                out.push_str("le=\"");
                out.push_str(&le);
                out.push_str("\"} ");
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            for (suffix, value) in [("_sum", histogram.sum), ("_count", histogram.count)] {
                out.push_str(family);
                out.push_str(suffix);
                if !labels.is_empty() {
                    out.push('{');
                    out.push_str(labels);
                    out.push('}');
                }
                out.push(' ');
                out.push_str(&value.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// Splits an inline-labeled name into `(family, labels)`:
/// `sheds_total{reason="x"}` → `("sheds_total", "reason=\"x\"")`.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(open) => (&name[..open], name[open + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = TickHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 1 << 20, (1 << 20) + 1] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), (1 << 20) + 1);
        assert_eq!(h.bucket_counts()[0], 2, "0 and 1 share the first bucket");
        assert_eq!(h.bucket_counts()[1], 1, "2 lands at le=2");
        assert_eq!(h.bucket_counts()[2], 2, "3 and 4 land at le=4");
        assert_eq!(h.bucket_counts()[3], 1, "5 lands at le=8");
        assert_eq!(h.bucket_counts()[HISTOGRAM_BUCKETS - 1], 1, "overflow goes to +Inf");
    }

    #[test]
    fn merge_is_exact_and_order_insensitive() {
        let mut a = TickHistogram::new();
        let mut b = TickHistogram::new();
        for v in [1u64, 7, 130] {
            a.observe(v);
        }
        for v in [2u64, 9] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.sum(), 1 + 7 + 130 + 2 + 9);
    }

    #[test]
    fn registry_from_events_counts_by_label() {
        let events = [
            Event::Admit { request: 0, tick: 0, shard: 0, queue_depth: 3 },
            Event::Shed { request: 1, tick: 4, shard: 1, reason: "queue_full" },
            Event::Shed { request: 2, tick: 5, shard: 1, reason: "queue_full" },
            Event::Shed { request: 3, tick: 6, shard: 0, reason: "deadline" },
            Event::Scale { tick: 8, active: 2 },
            Event::Answer { request: 0, tick: 9 },
        ];
        let reg = Registry::from_events(&events);
        assert_eq!(reg.counter("sheds_total{reason=\"queue_full\"}"), 2);
        assert_eq!(reg.counter("sheds_total{reason=\"deadline\"}"), 1);
        assert_eq!(reg.counter("answers_total"), 1);
        assert_eq!(reg.gauge("active_shards"), Some(2));
        assert_eq!(reg.histogram("queue_depth").unwrap().count(), 1);
    }

    #[test]
    fn registry_merge_adds_counters_and_maxes_gauges() {
        let mut a = Registry::new();
        a.inc("x_total", 2);
        a.set_gauge("hw", 5);
        a.observe("lat", 10);
        let mut b = Registry::new();
        b.inc("x_total", 3);
        b.set_gauge("hw", 9);
        b.observe("lat", 20);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be order-insensitive");
        assert_eq!(ab.counter("x_total"), 5);
        assert_eq!(ab.gauge("hw"), Some(9));
        assert_eq!(ab.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn prometheus_exposition_has_families_and_cumulative_buckets() {
        let mut reg = Registry::new();
        reg.inc("sheds_total{reason=\"deadline\"}", 1);
        reg.observe("stage_ticks{stage=\"queue\"}", 3);
        reg.observe("stage_ticks{stage=\"queue\"}", 5);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE sheds_total counter"));
        assert!(text.contains("# TYPE stage_ticks histogram"));
        assert!(text.contains("stage_ticks_bucket{stage=\"queue\",le=\"4\"} 1"));
        assert!(text.contains("stage_ticks_bucket{stage=\"queue\",le=\"+Inf\"} 2"));
        assert!(text.contains("stage_ticks_sum{stage=\"queue\"} 8"));
        assert!(text.contains("stage_ticks_count{stage=\"queue\"} 2"));
    }

    #[test]
    fn json_export_is_deterministic() {
        let mut reg = Registry::new();
        reg.inc("b_total", 1);
        reg.inc("a_total", 1);
        reg.observe("lat", 4);
        let text = reg.to_json().to_compact();
        assert!(text.find("a_total").unwrap() < text.find("b_total").unwrap());
        assert!(text.contains("\"histograms\""));
    }
}
