//! Span-tree assembly and per-stage latency attribution over a recorded event stream.
//!
//! A recorded run is a flat stream of [`Event`]s (recording order interleaves phase-A
//! routing decisions with per-shard engine timing, so it is not globally time-ordered).
//! Assembly groups the stream by request id, sorts each request's events by
//! `(tick, causal rank)`, and rebuilds the request's life as a **span tree**:
//!
//! ```text
//! request ───────────────────────────────────────────────────────────────┐
//! ├─ queue          admit → batch-close (or → crash, for evicted waits)  │
//! ├─ retry_backoff  crash → re-submission (deterministic backoff)        │
//! ├─ queue          re-admit → batch-close                               │
//! ├─ batch_wait     batch-close → service start (device busy)            │
//! ├─ compute        service start → service end                          │
//! ├─ escalation     low-pass end → high-pass end (two-tier upgrades)     │
//! │  ├─ queue / batch_wait / compute of the high pass                    │
//! └─ answer | shed  zero-width terminal leaf                             │
//! ```
//!
//! The stage segments tile the request's end-to-end window **exactly** — every gap between
//! consecutive timeline points is assigned to precisely one named stage — so for every
//! answered request `queue + batch_wait + compute + retry_backoff + escalation` equals its
//! end-to-end tick latency and [`StageBreakdown::coverage`] is exactly 1. The obs benchmark
//! commits that invariant (the issue's acceptance bar is ≥ 0.99) for an adversarial fault
//! scenario, and a proptest drives it across random fault plans × every arrival process.

use crate::event::Event;

/// The five named stages every answered tick is attributed to, in timeline order.
pub const STAGES: [&str; 5] = ["queue", "batch_wait", "compute", "retry_backoff", "escalation"];

/// One node of a request's span tree: a named stage covering `[start, end]` ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The stage label (`"request"` at the root, one of [`STAGES`] or `"answer"`/`"shed"`
    /// below it).
    pub stage: &'static str,
    /// First tick of the span.
    pub start: u64,
    /// Last tick of the span (`== start` for zero-width leaves).
    pub end: u64,
    /// Nested spans, in non-decreasing start order, each within `[start, end]`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Recursively checks the span-tree shape: every span has `start <= end`, every child
    /// lies within its parent, and siblings appear in non-decreasing, non-overlapping
    /// order. Returns a description of the first violation.
    pub fn well_formed(&self) -> Result<(), String> {
        if self.start > self.end {
            return Err(format!(
                "span {} runs backwards: [{}, {}]",
                self.stage, self.start, self.end
            ));
        }
        let mut cursor = self.start;
        for child in &self.children {
            if child.start < cursor {
                return Err(format!(
                    "child {} starts at {} before cursor {} inside {}",
                    child.stage, child.start, cursor, self.stage
                ));
            }
            if child.end > self.end {
                return Err(format!(
                    "child {} ends at {} past parent {} end {}",
                    child.stage, child.end, self.stage, self.end
                ));
            }
            child.well_formed()?;
            cursor = child.end;
        }
        Ok(())
    }
}

/// Exact per-stage decomposition of one request's end-to-end tick window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBreakdown {
    /// The request's id.
    pub request: u64,
    /// First recorded tick (the original submission).
    pub start_tick: u64,
    /// Terminal tick (answer completion, or the shed decision).
    pub end_tick: u64,
    /// Whether the request was answered (`false` = shed).
    pub answered: bool,
    /// Ticks spent queued in an open batch (including waits ended by a crash eviction).
    pub queue: u64,
    /// Ticks between batch close and service start (device busy).
    pub batch_wait: u64,
    /// Ticks in service (batch overhead + ε volume, slowdown-multiplied).
    pub compute: u64,
    /// Ticks in deterministic failover backoff windows.
    pub retry_backoff: u64,
    /// Ticks between a two-tier upgrade's low-pass and high-pass completions.
    pub escalation: u64,
}

impl StageBreakdown {
    /// End-to-end ticks (terminal − first submission).
    pub fn total(&self) -> u64 {
        self.end_tick - self.start_tick
    }

    /// Ticks attributed to a named stage (sums to [`StageBreakdown::total`] by
    /// construction).
    pub fn attributed(&self) -> u64 {
        self.queue + self.batch_wait + self.compute + self.retry_backoff + self.escalation
    }

    /// Attributed over total ticks; exactly 1.0 whenever the stream is complete (1.0 also
    /// for zero-latency requests, which have nothing to attribute).
    pub fn coverage(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.attributed() as f64 / self.total() as f64
        }
    }

    /// The stage values in [`STAGES`] order.
    pub fn stage_ticks(&self) -> [u64; 5] {
        [self.queue, self.batch_wait, self.compute, self.retry_backoff, self.escalation]
    }
}

/// One request's reconstructed trace: its span tree plus the exact stage breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The request's id.
    pub request: u64,
    /// The root span (`"request"`), children in timeline order, terminal leaf last.
    pub root: SpanNode,
    /// The exact stage attribution of the same window.
    pub breakdown: StageBreakdown,
}

/// Groups a recorded stream by request, rebuilds every request's span tree, and computes
/// its exact stage attribution. Traces come back sorted by request id.
///
/// # Errors
///
/// Returns a description of the first structural violation: a request with no terminal
/// answer-or-shed event, more than one terminal, events recorded after the terminal, a
/// backwards retry window, or an ill-formed span nesting. A stream produced by the serving
/// stack's recorder hooks never trips these; the error path exists so the proptests can
/// state the contract positively.
pub fn assemble_traces(events: &[Event]) -> Result<Vec<RequestTrace>, String> {
    // Group by request id, preserving recording order within a group (the sort below is
    // stable, so recording order breaks any remaining ties deterministically).
    let mut order: Vec<u64> = Vec::new();
    let mut groups: std::collections::HashMap<u64, Vec<Event>> = std::collections::HashMap::new();
    for event in events {
        if let Some(request) = event.request() {
            let group = groups.entry(request).or_default();
            if group.is_empty() {
                order.push(request);
            }
            group.push(*event);
        }
    }
    order.sort_unstable();

    let mut traces = Vec::with_capacity(order.len());
    for request in order {
        let mut group = groups.remove(&request).expect("grouped above");
        group.sort_by_key(|e| (e.tick(), e.rank()));
        traces.push(assemble_one(request, &group)?);
    }
    Ok(traces)
}

fn assemble_one(request: u64, events: &[Event]) -> Result<RequestTrace, String> {
    let terminals = events.iter().filter(|e| e.is_terminal()).count();
    if terminals != 1 {
        return Err(format!("request {request}: {terminals} terminal events, want exactly 1"));
    }
    let terminal = *events.last().expect("group is non-empty");
    if !terminal.is_terminal() {
        return Err(format!("request {request}: events recorded after the terminal leaf"));
    }
    let answered = matches!(terminal, Event::Answer { .. });
    let start_tick = events[0].tick();
    let end_tick = terminal.tick();

    // Walk the timeline, assigning every gap between consecutive points to one stage. A
    // Retry contributes two points (failure, re-submission); everything after an admitted
    // Escalation belongs to the escalation window (sub-attributed as its children).
    let mut breakdown = StageBreakdown {
        request,
        start_tick,
        end_tick,
        answered,
        queue: 0,
        batch_wait: 0,
        compute: 0,
        retry_backoff: 0,
        escalation: 0,
    };
    let mut spans: Vec<SpanNode> = Vec::new();
    let mut high_spans: Vec<SpanNode> = Vec::new();
    let mut escalated_at: Option<u64> = None;
    let mut prev = start_tick;
    let segment = |spans: &mut Vec<SpanNode>, stage: &'static str, from: u64, to: u64| {
        if to > from {
            spans.push(SpanNode { stage, start: from, end: to, children: Vec::new() });
        }
    };
    for event in events {
        if event.tick() < prev {
            return Err(format!(
                "request {request}: event {event:?} precedes timeline cursor {prev}"
            ));
        }
        if let Event::Retry { failed_tick, retry_tick, .. } = *event {
            if retry_tick < failed_tick {
                return Err(format!("request {request}: retry window runs backwards"));
            }
            breakdown.queue += failed_tick - prev;
            segment(&mut spans, "queue", prev, failed_tick);
            breakdown.retry_backoff += retry_tick - failed_tick;
            segment(&mut spans, "retry_backoff", failed_tick, retry_tick);
            prev = retry_tick;
            continue;
        }
        let gap = event.tick() - prev;
        let (bucket, stage): (&mut u64, &'static str) = if escalated_at.is_some() {
            // Inside the escalation window the gap counts as escalation time overall; the
            // high pass's own queue/batch/compute structure nests under it.
            breakdown.escalation += gap;
            match event {
                Event::BatchClose { .. } | Event::Admit { .. } => {
                    segment(&mut high_spans, "queue", prev, event.tick())
                }
                Event::Dispatch { .. } => {
                    segment(&mut high_spans, "batch_wait", prev, event.tick())
                }
                Event::ComputeDone { .. } => {
                    segment(&mut high_spans, "compute", prev, event.tick())
                }
                _ => {}
            }
            prev = event.tick();
            continue;
        } else {
            match event {
                Event::Admit { .. } | Event::BatchClose { .. } => (&mut breakdown.queue, "queue"),
                Event::Dispatch { .. } => (&mut breakdown.batch_wait, "batch_wait"),
                Event::ComputeDone { .. }
                | Event::Escalation { .. }
                | Event::Shed { .. }
                | Event::Answer { .. } => (&mut breakdown.compute, "compute"),
                Event::Retry { .. } => unreachable!("handled above"),
                Event::BatchSeal { .. }
                | Event::Degrade { .. }
                | Event::CheckpointFault { .. }
                | Event::Scale { .. } => unreachable!("not request-scoped"),
            }
        };
        *bucket += gap;
        segment(&mut spans, stage, prev, event.tick());
        if let Event::Escalation { admitted: true, .. } = event {
            escalated_at = Some(event.tick());
        }
        prev = event.tick();
    }
    if let Some(from) = escalated_at {
        spans.push(SpanNode { stage: "escalation", start: from, end: prev, children: high_spans });
    }
    spans.push(SpanNode {
        stage: if answered { "answer" } else { "shed" },
        start: end_tick,
        end: end_tick,
        children: Vec::new(),
    });
    let root = SpanNode { stage: "request", start: start_tick, end: end_tick, children: spans };
    root.well_formed().map_err(|e| format!("request {request}: {e}"))?;
    debug_assert_eq!(breakdown.attributed(), breakdown.total(), "stages must tile the window");
    Ok(RequestTrace { request, root, breakdown })
}

/// Nearest-rank percentile over a slice of tick values (the same convention as the serving
/// stats module). Sorts a copy; panics on an empty slice.
pub fn percentile(values: &[u64], q: f64) -> u64 {
    assert!(!values.is_empty(), "percentile of nothing");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_stream() -> Vec<Event> {
        vec![
            Event::Admit { request: 1, tick: 10, shard: 0, queue_depth: 0 },
            Event::BatchClose { request: 1, shard: 0, tick: 14 },
            Event::Dispatch { request: 1, shard: 0, tick: 20 },
            Event::ComputeDone { request: 1, shard: 0, tick: 33 },
            Event::Answer { request: 1, tick: 33 },
        ]
    }

    #[test]
    fn stages_tile_a_simple_answered_request() {
        let traces = assemble_traces(&simple_stream()).unwrap();
        assert_eq!(traces.len(), 1);
        let b = &traces[0].breakdown;
        assert!(b.answered);
        assert_eq!((b.queue, b.batch_wait, b.compute), (4, 6, 13));
        assert_eq!(b.total(), 23);
        assert_eq!(b.attributed(), 23);
        assert_eq!(b.coverage(), 1.0);
        traces[0].root.well_formed().unwrap();
        assert_eq!(traces[0].root.children.last().unwrap().stage, "answer");
    }

    #[test]
    fn retry_window_lands_in_retry_backoff() {
        let stream = vec![
            Event::Admit { request: 9, tick: 0, shard: 1, queue_depth: 2 },
            Event::Retry { request: 9, failed_tick: 8, retry_tick: 72, shard: Some(1), attempt: 1 },
            Event::Admit { request: 9, tick: 72, shard: 0, queue_depth: 0 },
            Event::BatchClose { request: 9, shard: 0, tick: 80 },
            Event::Dispatch { request: 9, shard: 0, tick: 80 },
            Event::ComputeDone { request: 9, shard: 0, tick: 95 },
            Event::Answer { request: 9, tick: 95 },
        ];
        let traces = assemble_traces(&stream).unwrap();
        let b = &traces[0].breakdown;
        assert_eq!(b.retry_backoff, 64);
        assert_eq!(b.queue, 8 + 8);
        assert_eq!(b.coverage(), 1.0);
    }

    #[test]
    fn escalation_window_nests_the_high_pass() {
        let stream = vec![
            Event::Admit { request: 3, tick: 0, shard: 0, queue_depth: 0 },
            Event::BatchClose { request: 3, shard: 0, tick: 4 },
            Event::Dispatch { request: 3, shard: 0, tick: 4 },
            Event::ComputeDone { request: 3, shard: 0, tick: 10 },
            Event::Escalation { request: 3, tick: 10, admitted: true },
            Event::BatchClose { request: 3, shard: 3, tick: 18 },
            Event::Dispatch { request: 3, shard: 3, tick: 18 },
            Event::ComputeDone { request: 3, shard: 3, tick: 40 },
            Event::Answer { request: 3, tick: 40 },
        ];
        let traces = assemble_traces(&stream).unwrap();
        let b = &traces[0].breakdown;
        assert_eq!(b.escalation, 30);
        assert_eq!(b.compute, 6);
        assert_eq!(b.coverage(), 1.0);
        let esc = traces[0].root.children.iter().find(|s| s.stage == "escalation").unwrap();
        assert_eq!(
            esc.children.iter().map(|c| c.stage).collect::<Vec<_>>(),
            vec!["queue", "compute"]
        );
    }

    #[test]
    fn shed_requests_terminate_with_a_shed_leaf() {
        let stream = vec![Event::Shed { request: 5, tick: 42, shard: 2, reason: "queue_full" }];
        let traces = assemble_traces(&stream).unwrap();
        assert!(!traces[0].breakdown.answered);
        assert_eq!(traces[0].root.children.last().unwrap().stage, "shed");
    }

    #[test]
    fn missing_or_duplicate_terminals_are_rejected() {
        let mut stream = simple_stream();
        stream.pop();
        assert!(assemble_traces(&stream).is_err(), "no terminal must fail");
        let mut stream = simple_stream();
        stream.push(Event::Answer { request: 1, tick: 33 });
        assert!(assemble_traces(&stream).is_err(), "two terminals must fail");
    }

    #[test]
    fn traces_sort_by_request_id() {
        let mut stream = simple_stream();
        stream.push(Event::Shed { request: 0, tick: 1, shard: 0, reason: "overload" });
        let traces = assemble_traces(&stream).unwrap();
        assert_eq!(traces.iter().map(|t| t.request).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let values = [10u64, 20, 30, 40];
        assert_eq!(percentile(&values, 0.5), 20);
        assert_eq!(percentile(&values, 0.99), 40);
        assert_eq!(percentile(&values, 0.0), 10);
    }
}
