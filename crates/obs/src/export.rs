//! The single serialization path for recorded decision events.
//!
//! Before this crate existed, `bnn_serve` serialized its shed/escalation/scale events and
//! its fault trace through per-type private functions. Those byte layouts are pinned by
//! committed benchmark baselines (`BENCH_cluster_summary.json`, `BENCH_chaos_summary.json`),
//! so this module reproduces them **exactly** — same keys, same order, same variants — and
//! the serving crate now routes both its report-based exports and any recorder-based stream
//! through these functions. One emission code path; the historical digests don't move.
//!
//! [`decision_events_json`] and [`fault_events_json`] filter a stream down to the legacy
//! event families; [`stream_json`] serializes a full recorded stream with type tags for
//! digesting whole traces.

use shift_bnn::sweep::json::{fnv1a_hex, Json};

use crate::event::Event;

/// The legacy (baseline-pinned) payload of one event — exactly the key order the serving
/// crate's per-type serializers used. Stage-transition variants that predate no baseline
/// (admit/close/dispatch/compute/seal/answer) get analogous field-order payloads.
pub fn event_payload(event: &Event) -> Json {
    match *event {
        Event::Admit { request, tick, shard, queue_depth } => Json::obj([
            ("request", Json::UInt(request)),
            ("tick", Json::UInt(tick)),
            ("shard", Json::UInt(shard as u64)),
            ("queue_depth", Json::UInt(queue_depth as u64)),
        ]),
        Event::BatchClose { request, shard, tick } => Json::obj([
            ("request", Json::UInt(request)),
            ("shard", Json::UInt(shard as u64)),
            ("tick", Json::UInt(tick)),
        ]),
        Event::Dispatch { request, shard, tick } => Json::obj([
            ("request", Json::UInt(request)),
            ("shard", Json::UInt(shard as u64)),
            ("tick", Json::UInt(tick)),
        ]),
        Event::ComputeDone { request, shard, tick } => Json::obj([
            ("request", Json::UInt(request)),
            ("shard", Json::UInt(shard as u64)),
            ("tick", Json::UInt(tick)),
        ]),
        Event::BatchSeal { shard, close_tick, members, version } => Json::obj([
            ("shard", Json::UInt(shard as u64)),
            ("close_tick", Json::UInt(close_tick)),
            ("members", Json::UInt(members as u64)),
            ("version", Json::UInt(version as u64)),
        ]),
        Event::Retry { request, failed_tick, retry_tick, shard, attempt } => Json::obj([
            ("request", Json::UInt(request)),
            ("failed_tick", Json::UInt(failed_tick)),
            ("retry_tick", Json::UInt(retry_tick)),
            ("shard", shard.map_or(Json::Null, |s| Json::UInt(s as u64))),
            ("attempt", Json::UInt(u64::from(attempt))),
        ]),
        Event::Degrade { tick, from, to, backlog } => Json::obj([
            ("tick", Json::UInt(tick)),
            ("from", Json::Str(from.to_string())),
            ("to", Json::Str(to.to_string())),
            ("backlog", Json::UInt(backlog as u64)),
        ]),
        Event::CheckpointFault { tick, shard, cancelled_swaps } => Json::obj([
            ("tick", Json::UInt(tick)),
            ("shard", Json::UInt(shard as u64)),
            ("cancelled_swaps", Json::UInt(cancelled_swaps as u64)),
        ]),
        Event::Shed { request, tick, shard, reason } => Json::obj([
            ("request", Json::UInt(request)),
            ("tick", Json::UInt(tick)),
            ("shard", Json::UInt(shard as u64)),
            ("reason", Json::Str(reason.to_string())),
        ]),
        Event::Escalation { request, tick, admitted } => Json::obj([
            ("request", Json::UInt(request)),
            ("tick", Json::UInt(tick)),
            ("admitted", Json::Bool(admitted)),
        ]),
        Event::Scale { tick, active } => {
            Json::obj([("tick", Json::UInt(tick)), ("active", Json::UInt(active as u64))])
        }
        Event::Answer { request, tick } => {
            Json::obj([("request", Json::UInt(request)), ("tick", Json::UInt(tick))])
        }
    }
}

fn payloads<'a>(
    events: impl IntoIterator<Item = &'a Event>,
    keep: impl Fn(&Event) -> bool,
) -> Json {
    Json::Array(events.into_iter().filter(|e| keep(e)).map(event_payload).collect())
}

/// The cluster decision-event document — `{sheds, escalations, scale_events}` — filtered
/// from a recorded stream. Byte-identical to the serving report's historical
/// `events_json` layout (minus the final `to_compact`, which the caller applies).
pub fn decision_events_json<'a>(events: impl IntoIterator<Item = &'a Event> + Clone) -> Json {
    Json::obj([
        ("sheds", payloads(events.clone(), |e| matches!(e, Event::Shed { .. }))),
        ("escalations", payloads(events.clone(), |e| matches!(e, Event::Escalation { .. }))),
        ("scale_events", payloads(events, |e| matches!(e, Event::Scale { .. }))),
    ])
}

/// The fault-trace document — `{retries, degrades, checkpoint_faults}` — filtered from a
/// recorded stream. Byte-identical to the historical `FaultTrace::to_json` layout.
pub fn fault_events_json<'a>(events: impl IntoIterator<Item = &'a Event> + Clone) -> Json {
    Json::obj([
        ("retries", payloads(events.clone(), |e| matches!(e, Event::Retry { .. }))),
        ("degrades", payloads(events.clone(), |e| matches!(e, Event::Degrade { .. }))),
        ("checkpoint_faults", payloads(events, |e| matches!(e, Event::CheckpointFault { .. }))),
    ])
}

/// The variant's type tag in [`stream_json`].
pub fn event_type(event: &Event) -> &'static str {
    match event {
        Event::Admit { .. } => "admit",
        Event::BatchClose { .. } => "batch_close",
        Event::Dispatch { .. } => "dispatch",
        Event::ComputeDone { .. } => "compute_done",
        Event::BatchSeal { .. } => "batch_seal",
        Event::Retry { .. } => "retry",
        Event::Degrade { .. } => "degrade",
        Event::CheckpointFault { .. } => "checkpoint_fault",
        Event::Shed { .. } => "shed",
        Event::Escalation { .. } => "escalation",
        Event::Scale { .. } => "scale",
        Event::Answer { .. } => "answer",
    }
}

/// A full recorded stream as a type-tagged JSON array, in recording order — the canonical
/// bytes a whole trace is digested over.
pub fn stream_json(events: &[Event]) -> Json {
    Json::Array(
        events
            .iter()
            .map(|e| {
                let mut pairs = vec![("type".to_string(), Json::Str(event_type(e).to_string()))];
                if let Json::Object(fields) = event_payload(e) {
                    pairs.extend(fields);
                }
                Json::Object(pairs)
            })
            .collect(),
    )
}

/// FNV-1a digest of a document's compact bytes, 16 hex characters — the same digest
/// convention every committed baseline uses.
pub fn digest(json: &Json) -> String {
    fnv1a_hex(json.to_compact().bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_payload_shapes_are_pinned() {
        // These literals are the byte layouts the committed cluster/chaos baselines pin;
        // they must never change shape, key order, or variant encoding.
        let shed = Event::Shed { request: 3, tick: 40, shard: 1, reason: "queue_full" };
        assert_eq!(
            event_payload(&shed).to_compact(),
            r#"{"request":3,"tick":40,"shard":1,"reason":"queue_full"}"#
        );
        let esc = Event::Escalation { request: 9, tick: 77, admitted: true };
        assert_eq!(event_payload(&esc).to_compact(), r#"{"request":9,"tick":77,"admitted":true}"#);
        let scale = Event::Scale { tick: 128, active: 3 };
        assert_eq!(event_payload(&scale).to_compact(), r#"{"tick":128,"active":3}"#);
        let retry =
            Event::Retry { request: 5, failed_tick: 10, retry_tick: 74, shard: None, attempt: 2 };
        assert_eq!(
            event_payload(&retry).to_compact(),
            r#"{"request":5,"failed_tick":10,"retry_tick":74,"shard":null,"attempt":2}"#
        );
        let degrade = Event::Degrade { tick: 6, from: "normal", to: "moment", backlog: 31 };
        assert_eq!(
            event_payload(&degrade).to_compact(),
            r#"{"tick":6,"from":"normal","to":"moment","backlog":31}"#
        );
        let ckpt = Event::CheckpointFault { tick: 512, shard: 2, cancelled_swaps: 1 };
        assert_eq!(
            event_payload(&ckpt).to_compact(),
            r#"{"tick":512,"shard":2,"cancelled_swaps":1}"#
        );
    }

    #[test]
    fn filtered_documents_keep_family_key_order() {
        let events = [
            Event::Scale { tick: 1, active: 2 },
            Event::Shed { request: 0, tick: 2, shard: 0, reason: "overload" },
            Event::Retry { request: 1, failed_tick: 3, retry_tick: 67, shard: Some(0), attempt: 1 },
        ];
        let decisions = decision_events_json(&events).to_compact();
        assert!(decisions.starts_with(r#"{"sheds":["#));
        assert!(decisions.contains(r#""escalations":[]"#));
        let faults = fault_events_json(&events).to_compact();
        assert!(faults.starts_with(r#"{"retries":["#));
        assert!(faults.ends_with(r#""checkpoint_faults":[]}"#));
    }

    #[test]
    fn stream_json_tags_every_event() {
        let events = [
            Event::Admit { request: 0, tick: 0, shard: 0, queue_depth: 0 },
            Event::Answer { request: 0, tick: 9 },
        ];
        let text = stream_json(&events).to_compact();
        assert!(text.contains(r#"{"type":"admit","request":0"#));
        assert!(text.contains(r#"{"type":"answer","request":0,"tick":9}"#));
        assert_eq!(digest(&stream_json(&events)).len(), 16);
    }
}
