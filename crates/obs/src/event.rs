//! The tick-stamped event vocabulary every recorded serving run is described in.
//!
//! One [`Event`] is one stage transition (or one control decision) at one exact simulated
//! tick. The variants mirror the serving stack's typed decision events field for field —
//! [`Event::Shed`] carries exactly what `bnn_serve::ShedEvent` carries, [`Event::Retry`]
//! exactly what `bnn_serve::faults::RetryEvent` carries, and so on — so the exporter in
//! [`crate::export`] can serialize either source through one code path, byte-identically to
//! the historical per-type serializers.
//!
//! Every variant is `Copy` and holds only integers and `&'static str` labels: recording an
//! event is a fixed-size store with no heap traffic, which is what lets the enabled
//! recorder's steady state stay allocation-free (asserted at the allocator by the bench
//! crate's `alloc_zero` probe).

/// One tick-stamped observation from a recorded serving run.
///
/// Request-scoped variants (everything except [`Event::Degrade`], [`Event::Scale`],
/// [`Event::CheckpointFault`] and [`Event::BatchSeal`]) carry the caller-chosen request id;
/// span assembly and stage attribution group by it, so ids should be unique within a trace
/// (the workload generator's always are).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A request joined a shard's open batch at `tick` (its arrival, or its final retry's
    /// submission tick). `queue_depth` is the shard's backlog at the admission decision —
    /// the same value admission control compared against the queue cap.
    Admit {
        /// The admitted request's id.
        request: u64,
        /// The admission tick.
        tick: u64,
        /// The shard it joined.
        shard: usize,
        /// The shard's backlog at the decision (admitted-but-incomplete requests).
        queue_depth: usize,
    },
    /// The batch holding `request` closed (stopped accepting members) at `tick`.
    BatchClose {
        /// The member request's id.
        request: u64,
        /// The closing batch's shard.
        shard: usize,
        /// The close tick.
        tick: u64,
    },
    /// The batch holding `request` started service on its shard's device at `tick`.
    Dispatch {
        /// The member request's id.
        request: u64,
        /// The serving shard.
        shard: usize,
        /// The service-start tick.
        tick: u64,
    },
    /// The batch holding `request` finished computing at `tick`.
    ComputeDone {
        /// The member request's id.
        request: u64,
        /// The serving shard.
        shard: usize,
        /// The service-end tick.
        tick: u64,
    },
    /// One closed batch, summarized (occupancy metrics): `members` requests sealed at
    /// `close_tick` on `shard`, served by posterior `version`.
    BatchSeal {
        /// The batch's shard.
        shard: usize,
        /// The close tick.
        close_tick: u64,
        /// Member count.
        members: usize,
        /// The posterior version active at the batch's service start.
        version: usize,
    },
    /// A crash evicted (or no live shard could take) `request`; it re-enters the router at
    /// `retry_tick` after its deterministic backoff. Mirrors `bnn_serve::faults::RetryEvent`.
    Retry {
        /// The retried request's id.
        request: u64,
        /// The tick the failure was observed at.
        failed_tick: u64,
        /// The tick the request re-enters the router at.
        retry_tick: u64,
        /// The crashed shard, `None` when the failure was "no live shard".
        shard: Option<usize>,
        /// Which retry attempt this is (1-indexed).
        attempt: u32,
    },
    /// The degradation ladder changed level at a submission tick. Mirrors
    /// `bnn_serve::faults::DegradeEvent` (labels are the `DegradeLevel` labels).
    Degrade {
        /// The submission tick of the transition.
        tick: u64,
        /// The level before (its machine label).
        from: &'static str,
        /// The level after (its machine label).
        to: &'static str,
        /// The cluster-wide backlog that selected `to`.
        backlog: usize,
    },
    /// A hot-swap's incoming version failed validation; the shard kept its prior version.
    /// Mirrors `bnn_serve::faults::CheckpointFaultEvent`.
    CheckpointFault {
        /// The `at_tick` of the failed swap.
        tick: u64,
        /// The shard that kept its prior version.
        shard: usize,
        /// Scheduled swaps cancelled at this (shard, tick).
        cancelled_swaps: usize,
    },
    /// A request was shed — the terminal leaf of an unanswered request's span tree.
    /// Mirrors `bnn_serve::ShedEvent` (the label is the `ShedReason` label).
    Shed {
        /// The shed request's id.
        request: u64,
        /// The decision tick.
        tick: u64,
        /// The shard the router had chosen.
        shard: usize,
        /// The shed reason's machine label.
        reason: &'static str,
    },
    /// A two-tier escalation decision at the request's low-pass completion tick. Mirrors
    /// `bnn_serve::EscalationEvent`.
    Escalation {
        /// The escalated request's id.
        request: u64,
        /// The low-pass completion tick.
        tick: u64,
        /// Whether the high shard admitted the escalation.
        admitted: bool,
    },
    /// An autoscaling decision. Mirrors `bnn_serve::ScaleEvent`.
    Scale {
        /// The epoch tick.
        tick: u64,
        /// Active shards after the decision.
        active: usize,
    },
    /// A request's final answer became available at `tick` — the terminal leaf of an
    /// answered request's span tree (for an upgraded two-tier request, the high pass's end).
    Answer {
        /// The answered request's id.
        request: u64,
        /// The completion tick of the carried answer.
        tick: u64,
    },
}

impl Event {
    /// The request id the event is scoped to, `None` for shard/cluster-scoped events.
    pub fn request(&self) -> Option<u64> {
        match *self {
            Event::Admit { request, .. }
            | Event::BatchClose { request, .. }
            | Event::Dispatch { request, .. }
            | Event::ComputeDone { request, .. }
            | Event::Retry { request, .. }
            | Event::Shed { request, .. }
            | Event::Escalation { request, .. }
            | Event::Answer { request, .. } => Some(request),
            Event::BatchSeal { .. }
            | Event::Degrade { .. }
            | Event::CheckpointFault { .. }
            | Event::Scale { .. } => None,
        }
    }

    /// The event's primary tick — the point it sorts by on a request's timeline (a
    /// [`Event::Retry`] sorts at its `failed_tick`; the backoff window to `retry_tick` is
    /// attributed separately).
    pub fn tick(&self) -> u64 {
        match *self {
            Event::Admit { tick, .. }
            | Event::BatchClose { tick, .. }
            | Event::Dispatch { tick, .. }
            | Event::ComputeDone { tick, .. }
            | Event::Degrade { tick, .. }
            | Event::CheckpointFault { tick, .. }
            | Event::Shed { tick, .. }
            | Event::Escalation { tick, .. }
            | Event::Scale { tick, .. }
            | Event::Answer { tick, .. } => tick,
            Event::BatchSeal { close_tick, .. } => close_tick,
            Event::Retry { failed_tick, .. } => failed_tick,
        }
    }

    /// Tie-break rank for events sharing a tick on one request's timeline, in causal order:
    /// admit < batch-close < retry < dispatch < compute < escalation < terminal.
    pub fn rank(&self) -> u8 {
        match self {
            Event::Admit { .. } => 0,
            Event::BatchClose { .. } | Event::BatchSeal { .. } => 1,
            Event::Retry { .. } => 2,
            Event::Dispatch { .. } => 3,
            Event::ComputeDone { .. } => 4,
            Event::Degrade { .. } | Event::CheckpointFault { .. } | Event::Scale { .. } => 5,
            Event::Escalation { .. } => 6,
            Event::Shed { .. } | Event::Answer { .. } => 7,
        }
    }

    /// Whether the event terminates a request's span tree (answer-or-shed).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Event::Shed { .. } | Event::Answer { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_fixed_size_and_copy() {
        // The recorder's zero-allocation argument rests on Event being a plain Copy value.
        fn assert_copy<T: Copy>() {}
        assert_copy::<Event>();
        assert!(std::mem::size_of::<Event>() <= 64, "Event should stay a small fixed struct");
    }

    #[test]
    fn request_scope_and_ticks() {
        let e =
            Event::Retry { request: 7, failed_tick: 10, retry_tick: 74, shard: None, attempt: 1 };
        assert_eq!(e.request(), Some(7));
        assert_eq!(e.tick(), 10);
        assert!(!e.is_terminal());
        assert!(Event::Answer { request: 7, tick: 99 }.is_terminal());
        assert_eq!(Event::Scale { tick: 5, active: 2 }.request(), None);
    }

    #[test]
    fn ranks_follow_causal_order_on_ties() {
        let admit = Event::Admit { request: 1, tick: 4, shard: 0, queue_depth: 0 };
        let close = Event::BatchClose { request: 1, shard: 0, tick: 4 };
        let dispatch = Event::Dispatch { request: 1, shard: 0, tick: 4 };
        assert!(admit.rank() < close.rank());
        assert!(close.rank() < dispatch.rank());
    }
}
