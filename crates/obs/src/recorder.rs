//! The [`Recorder`] trait the serving stack is generic over, and its two implementations.
//!
//! The contract has two halves:
//!
//! * **observation only** — a recorder is handed every [`Event`] at the decision point that
//!   produced it, but nothing in the serving stack ever reads recorder state back. Responses,
//!   outcomes and timings are therefore byte-identical with tracing on or off; the obs-bench
//!   grid re-asserts this equivalence on every run.
//! * **no-op compiles to nothing** — call sites guard every `record` behind
//!   `if R::ENABLED`, a monomorphization-time constant. With [`NullRecorder`] the branch is
//!   `if false { .. }` and the whole recording path folds away; the traced-vs-untraced
//!   `obs_overhead` arm of `hot_bench` gates the residual cost of the enabled path.
//!
//! Recorders are driven exclusively from the orchestration thread (phase-A routing and the
//! engines' sequential timing loops), never from pool workers — which is why the trait needs
//! no `Sync` bound and why recorded streams are identical at any worker or shard count.

use crate::event::Event;

/// Receives tick-stamped [`Event`]s from a recorded serving run.
pub trait Recorder {
    /// Monomorphization-time switch call sites guard on: `false` compiles recording away.
    const ENABLED: bool;

    /// Records one event. Called only when [`Recorder::ENABLED`] is `true`.
    fn record(&mut self, event: Event);
}

/// The no-op recorder: `ENABLED = false`, so guarded call sites compile to nothing. Every
/// untraced entry point (`Cluster::run`, `InferenceEngine::run`, …) is a thin wrapper
/// passing this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// An in-memory recorder appending events to a preallocated buffer.
///
/// Steady-state recording is allocation-free as long as pushes stay within the buffer's
/// capacity: [`Event`] is `Copy` with only `&'static str` labels, so a `record` is one
/// bounds check and one fixed-size store. Size the buffer with
/// [`TraceRecorder::with_capacity`] (or let a warmup run grow it) and reuse it across runs
/// via [`TraceRecorder::clear`], which keeps the capacity.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<Event>,
}

impl TraceRecorder {
    /// An empty recorder (grows on demand).
    pub fn new() -> TraceRecorder {
        TraceRecorder { events: Vec::new() }
    }

    /// An empty recorder with room for `capacity` events before any reallocation.
    pub fn with_capacity(capacity: usize) -> TraceRecorder {
        TraceRecorder { events: Vec::with_capacity(capacity) }
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Recorded event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Current buffer capacity in events.
    pub fn capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Drops the recorded events but keeps the allocation, readying the recorder for the
    /// next run without heap traffic.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Consumes the recorder, returning the event buffer.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Recorder for TraceRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        const { assert!(!NullRecorder::ENABLED) };
        // Recording through it is a no-op by contract; just exercise the call.
        NullRecorder.record(Event::Scale { tick: 1, active: 1 });
    }

    #[test]
    fn trace_recorder_appends_in_order_and_clears_in_place() {
        let mut rec = TraceRecorder::with_capacity(8);
        let base = rec.capacity();
        rec.record(Event::Answer { request: 1, tick: 5 });
        rec.record(Event::Answer { request: 2, tick: 9 });
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events()[0].request(), Some(1));
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.capacity(), base, "clear must keep the allocation");
    }
}
