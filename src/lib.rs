//! Umbrella crate of the Shift-BNN reproduction: re-exports the workspace crates so the
//! examples and integration tests can use a single dependency, and documents how the pieces fit
//! together.
//!
//! * [`lfsr`] (`bnn-lfsr`) — reversible Fibonacci LFSRs and the CLT-based Gaussian RNG;
//! * [`tensor`] (`bnn-tensor`) — the dense tensor / NN math substrate;
//! * [`train`] (`bnn-train`) — Bayes-by-Backprop training with store-replay or LFSR-retrieved ε;
//! * [`models`] (`bnn-models`) — the five paper model families and their workload volumes;
//! * [`arch`] (`bnn-arch`) — the accelerator simulator (mappings, energy, latency, resources,
//!   GPU roofline);
//! * [`core`] (`shift-bnn`) — the four accelerator designs and the comparison/scalability APIs;
//! * [`serve`] (`bnn-serve`) — the batched Monte-Carlo uncertainty-serving engine over frozen
//!   posteriors;
//! * [`store`] (`bnn-store`) — the deterministic posterior checkpoint store and versioned model
//!   registry (train → snapshot → publish → serve → hot-swap).
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and figure.

#![warn(missing_docs)]

pub use bnn_arch as arch;
pub use bnn_lfsr as lfsr;
pub use bnn_models as models;
pub use bnn_serve as serve;
pub use bnn_store as store;
pub use bnn_tensor as tensor;
pub use bnn_train as train;
pub use shift_bnn as core;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        assert_eq!(crate::core::DesignKind::ShiftBnn.name(), "Shift-BNN");
        assert!(crate::models::ModelKind::all().len() == 5);
        assert_eq!(crate::store::codec::FORMAT_VERSION, 1);
    }
}
