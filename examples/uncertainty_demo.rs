//! Uncertainty demo: the property that motivates BNNs in the paper's introduction.
//!
//! A Bayesian network trained with Bayes-by-Backprop produces a *distribution* of predictions;
//! averaging over sampled models gives calibrated class probabilities whose entropy is low on
//! inputs similar to the training data and high on out-of-distribution inputs — the signal a
//! safety-critical system uses to avoid over-confident decisions.
//!
//! Run with: `cargo run --example uncertainty_demo`

use bnn_train::data::SyntheticDataset;
use bnn_train::epsilon::{EpsilonSource, LfsrRetrieve};
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn prediction_sources(count: usize, seed: u64) -> Vec<Box<dyn EpsilonSource>> {
    (0..count)
        .map(|i| Box::new(LfsrRetrieve::new(seed + i as u64).unwrap()) as Box<dyn EpsilonSource>)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = [1usize, 8, 8];
    let classes = 3;
    let dataset = SyntheticDataset::generate(&shape, classes, 20, 0.2, 42);
    let (train, val) = dataset.split(0.8);

    let mut rng = StdRng::seed_from_u64(3);
    let config = BayesConfig { kl_weight: 5e-4, ..BayesConfig::default() };
    let network = Network::bayes_lenet(&[1, 8, 8], classes, config, &mut rng);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig {
            samples: 4,
            learning_rate: 0.05,
            strategy: EpsilonStrategy::LfsrRetrieve,
            seed: 5,
        },
    )?;

    for epoch in 1..=10 {
        let metrics = trainer.train_epoch(&train)?;
        if epoch % 5 == 0 {
            println!("epoch {epoch}: mean loss {:.4}", metrics.mean_loss);
        }
    }
    println!("validation accuracy: {:.1}%", trainer.evaluate(&val)? * 100.0);

    // Predictive entropy on in-distribution vs out-of-distribution inputs, averaged over 16
    // sampled models each.
    let mut in_dist_entropy = 0.0f32;
    let mut count = 0;
    for (image, _) in val.iter().take(10) {
        let mut sources = prediction_sources(16, 1000);
        let probs = trainer.network_mut().predict(image, &mut sources)?;
        in_dist_entropy += Network::predictive_entropy(&probs);
        count += 1;
    }
    in_dist_entropy /= count as f32;

    let ood = SyntheticDataset::out_of_distribution(&shape, 10, 77);
    let mut ood_entropy = 0.0f32;
    for image in &ood {
        let mut sources = prediction_sources(16, 2000);
        let probs = trainer.network_mut().predict(image, &mut sources)?;
        ood_entropy += Network::predictive_entropy(&probs);
    }
    ood_entropy /= ood.len() as f32;

    let max_entropy = (classes as f32).ln();
    println!("mean predictive entropy, in-distribution : {in_dist_entropy:.3} nats (max {max_entropy:.3})");
    println!("mean predictive entropy, out-of-distribution: {ood_entropy:.3} nats");
    println!(
        "the BNN is {} on data it was never trained on",
        if ood_entropy > in_dist_entropy {
            "appropriately less confident"
        } else {
            "NOT less confident (unexpected)"
        }
    );
    Ok(())
}
