//! Quickstart: the three layers of the reproduction in one file.
//!
//! 1. Generate Gaussian random variables with a reversible LFSR-backed GRNG and retrieve them
//!    again by shifting backwards (the paper's core trick).
//! 2. Train a small Bayesian neural network with Bayes-by-Backprop using LFSR-retrieved ε and
//!    confirm it matches the store-everything baseline bit for bit.
//! 3. Evaluate the same workload on the Shift-BNN accelerator model versus the baseline
//!    accelerator and print the headline savings.
//!
//! Run with: `cargo run --example quickstart`

use bnn_lfsr::{Grng, GrngMode};
use bnn_models::ModelKind;
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn::compare::DesignComparison;
use shift_bnn::designs::DesignKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Reversible Gaussian random numbers -------------------------------------------------
    let mut grng = Grng::shift_bnn_default(2021)?;
    let forward: Vec<f64> = (0..9).map(|_| grng.next_epsilon()).collect();
    grng.set_mode(GrngMode::Backward);
    let retrieved: Vec<f64> = (0..9).map(|_| grng.retrieve_epsilon()).collect();
    println!("forward ε  : {forward:.3?}");
    println!("retrieved ε: {retrieved:.3?} (reverse order, bit-exact, nothing stored)");
    assert_eq!(forward.iter().rev().copied().collect::<Vec<_>>(), retrieved);

    // --- 2. Bayes-by-Backprop training with LFSR retrieval -------------------------------------
    let dataset = SyntheticDataset::generate(&[16], 3, 8, 0.2, 7);
    let (train, val) = dataset.split(0.75);
    let mut trainers = Vec::new();
    for strategy in [EpsilonStrategy::StoreReplay, EpsilonStrategy::LfsrRetrieve] {
        let mut rng = StdRng::seed_from_u64(1);
        let network = Network::bayes_mlp(16, &[24], 3, BayesConfig::default(), &mut rng);
        let mut trainer = Trainer::new(
            network,
            TrainerConfig { samples: 4, learning_rate: 0.08, strategy, seed: 11 },
        )?;
        for _ in 0..8 {
            trainer.train_epoch(&train)?;
        }
        let accuracy = trainer.evaluate(&val)?;
        println!(
            "{strategy:?}: validation accuracy {:.1}%, stored ε values {}",
            accuracy * 100.0,
            trainer.stored_epsilons()
        );
        trainers.push((trainer, accuracy));
    }
    assert_eq!(trainers[0].1, trainers[1].1, "both strategies train identically");

    // --- 3. Accelerator-level savings -----------------------------------------------------------
    let comparison = DesignComparison::run(&ModelKind::LeNet.bnn(), 16, &DesignKind::all());
    let energy = comparison.normalized_energy(DesignKind::RcAcc);
    let speedup = comparison.speedup_over(DesignKind::RcAcc);
    let shift_energy = energy.iter().find(|(d, _)| *d == DesignKind::ShiftBnn).unwrap().1;
    let shift_speed = speedup.iter().find(|(d, _)| *d == DesignKind::ShiftBnn).unwrap().1;
    println!(
        "B-LeNet (S=16) on Shift-BNN vs RC baseline: {:.0}% less energy, {:.2}x faster, 0 ε DRAM accesses",
        (1.0 - shift_energy) * 100.0,
        shift_speed
    );
    Ok(())
}
