//! Train → save → resume → serve → hot-swap: the checkpoint-store lifecycle in one file.
//!
//! 1. Train a small Bayesian LeNet for a few steps and capture a **training checkpoint**
//!    (posterior + step count + every GRNG register) — then prove the resume is bit-exact by
//!    comparing one more step against an uninterrupted run.
//! 2. Publish v1 to a [`ModelRegistry`] (atomic, monotonically versioned), keep training,
//!    publish v2.
//! 3. Serve the registry-loaded v1 with the batched Monte-Carlo engine, then **hot-swap** to
//!    v2 mid-trace: the old version drains, the new version answers from a deterministic tick
//!    boundary onward, and no request is dropped.
//!
//! Run with: `cargo run --example train_save_serve`

use bnn_serve::{BatchPolicy, InferenceEngine, VersionSwap, WorkloadSpec};
use bnn_store::{Checkpoint, ModelRegistry};
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const INPUT: [usize; 3] = [1, 8, 8];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Train, checkpoint, resume bit-exactly ----------------------------------------------
    let dataset = SyntheticDataset::generate(&INPUT, 3, 4, 0.2, 11);
    let mut rng = StdRng::seed_from_u64(5);
    let network = Network::bayes_lenet(&INPUT, 3, BayesConfig::default(), &mut rng);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig { samples: 3, learning_rate: 0.05, ..TrainerConfig::default() },
    )?;
    trainer.train_epoch(&dataset)?;

    let v1 = Checkpoint::from_trainer(&trainer);
    let bytes = v1.to_bytes();
    println!(
        "checkpoint after {} steps: {} bytes, digest {} (posterior + trainer state)",
        trainer.steps(),
        bytes.len(),
        v1.digest()
    );

    // Resuming from the serialized bytes replays the uninterrupted run exactly.
    let mut resumed = Checkpoint::from_bytes(&bytes)?.resume_trainer()?;
    let (image, label) = dataset.example(0);
    let uninterrupted_step = trainer.train_example(image, label)?;
    let resumed_step = resumed.train_example(image, label)?;
    assert_eq!(uninterrupted_step, resumed_step);
    println!(
        "resume is bit-exact: next-step loss {:.6} from both the live and the reloaded trainer",
        resumed_step.total_loss
    );

    // --- 2. Publish two versions to the registry ----------------------------------------------
    let root = std::path::Path::new("target/tmp/train_save_serve-registry");
    let _ = std::fs::remove_dir_all(root);
    let registry = ModelRegistry::open(root)?;
    let version_1 = registry.publish("blenet", &v1)?;
    trainer.train_epoch(&dataset)?; // keep training → a new posterior
    let version_2 = registry.publish("blenet", &Checkpoint::from_trainer(&trainer))?;
    println!(
        "published blenet v{version_1} and v{version_2} to {} (atomic, immutable)",
        root.display()
    );

    // --- 3. Serve v1, hot-swap to v2 mid-trace ------------------------------------------------
    let (_, v1_source) = registry.serve_source("blenet", Some(version_1), INPUT.to_vec())?;
    let (_, v2_source) = registry.serve_source("blenet", Some(version_2), INPUT.to_vec())?;
    let trace = WorkloadSpec::uniform(16, 4, 4, 21).generate_for_shape(&INPUT);
    let engine =
        InferenceEngine::from_source(v1_source, BatchPolicy { max_batch: 4, max_wait_ticks: 8 }, 2);
    let report = engine.run_with_swaps(&trace, &[VersionSwap { at_tick: 70, source: v2_source }]);
    let boundary = report.batches.iter().find(|b| b.version == 1).expect("swap lands");
    println!(
        "served {} requests across the swap: v1 drained {} batch(es), v2 answered from tick {} \
         (requested at 70) — no request dropped",
        report.responses.len(),
        report.batches.iter().filter(|b| b.version == 0).count(),
        boundary.start_tick
    );
    Ok(())
}
