//! Train a B-LeNet-style Bayesian convolutional network end to end with LFSR-retrieved ε,
//! verify bit-exactness against the store-and-replay baseline, and report what the equivalent
//! training iteration costs on the Shift-BNN accelerator versus the baseline accelerator.
//!
//! Run with: `cargo run --release --example train_blenet`

use bnn_models::ModelKind;
use bnn_tensor::Precision;
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn::designs::DesignKind;
use shift_bnn::evaluate::evaluate;

fn build_trainer(strategy: EpsilonStrategy) -> Trainer {
    let mut rng = StdRng::seed_from_u64(2021);
    let config = BayesConfig { kl_weight: 5e-4, ..BayesConfig::default() }
        .with_precision(Precision::PAPER_16BIT);
    let network = Network::bayes_lenet(&[3, 16, 16], 4, config, &mut rng);
    Trainer::new(network, TrainerConfig { samples: 4, learning_rate: 0.05, strategy, seed: 9 })
        .expect("trainer")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic CIFAR-10 stand-in (3-channel images); see DESIGN.md for the substitution note.
    let dataset = SyntheticDataset::generate(&[3, 16, 16], 4, 16, 0.25, 13);
    let (train, val) = dataset.split(0.75);

    let mut shift = build_trainer(EpsilonStrategy::LfsrRetrieve);
    let mut baseline = build_trainer(EpsilonStrategy::StoreReplay);

    println!("epoch  loss(Shift-BNN)  loss(baseline)  val-acc(Shift-BNN)");
    for epoch in 1..=10 {
        let ms = shift.train_epoch(&train)?;
        let mb = baseline.train_epoch(&train)?;
        assert_eq!(ms, mb, "LFSR retrieval must not change the training trajectory");
        let acc = shift.evaluate(&val)?;
        println!(
            "{epoch:>5}  {:>15.4}  {:>14.4}  {:>17.1}%",
            ms.mean_loss,
            mb.mean_loss,
            acc * 100.0
        );
    }
    println!(
        "ε values the baseline stored: {}; Shift-BNN stored: {}",
        baseline.stored_epsilons(),
        shift.stored_epsilons()
    );

    // What the same workload costs at accelerator level, at the paper's full B-LeNet scale.
    let model = ModelKind::LeNet.bnn();
    let rc = evaluate(DesignKind::RcAcc, &model, 16);
    let shift_acc = evaluate(DesignKind::ShiftBnn, &model, 16);
    println!(
        "full-size B-LeNet (S=16) per-iteration cost: RC-Acc {:.1} mJ / {:.2} ms, Shift-BNN {:.1} mJ / {:.2} ms",
        rc.energy_mj(),
        rc.latency_s() * 1e3,
        shift_acc.energy_mj(),
        shift_acc.latency_s() * 1e3
    );
    println!(
        "energy saved: {:.0}%  |  ε DRAM accesses eliminated: {}",
        (1.0 - shift_acc.energy_mj() / rc.energy_mj()) * 100.0,
        rc.report.dram_traffic.epsilon
    );
    Ok(())
}
