//! Accelerator sweep: evaluate every paper model on every accelerator design across a range of
//! Monte-Carlo sample counts and print energy, latency, DRAM traffic and efficiency — the
//! exploration a system designer would run before choosing a deployment point.
//!
//! The whole grid executes as one `shift_bnn::sweep` run on the work-stealing pool; the table
//! below is just a rendering of the resulting `SweepReport`.
//!
//! Run with: `cargo run --release --example accelerator_sweep`

use bnn_arch::EnergyModel;
use bnn_models::{paper_bnns, ModelKind};
use shift_bnn::designs::DesignKind;
use shift_bnn::sweep::{pool, run_sweep, SweepGrid, SweepPrecision};

fn main() {
    let sample_counts = vec![8usize, 16, 32];
    let grid = SweepGrid {
        designs: DesignKind::all().to_vec(),
        models: paper_bnns(),
        sample_counts: sample_counts.clone(),
        precisions: vec![SweepPrecision::Bits16],
    };
    let report = run_sweep(&grid, pool::default_workers(), &EnergyModel::default());

    println!(
        "{:<12} {:>4} {:>12} {:>14} {:>14} {:>16} {:>14}",
        "model", "S", "design", "energy (mJ)", "latency (ms)", "DRAM (MValues)", "GOPS/W"
    );
    for kind in ModelKind::all() {
        for &samples in &sample_counts {
            let comparison = report.comparison(kind.paper_name(), samples);
            for evaluation in &comparison.evaluations {
                println!(
                    "{:<12} {:>4} {:>12} {:>14.2} {:>14.3} {:>16.1} {:>14.1}",
                    kind.paper_name(),
                    samples,
                    evaluation.design.name(),
                    evaluation.energy_mj(),
                    evaluation.latency_s() * 1e3,
                    evaluation.dram_accesses() as f64 / 1e6,
                    evaluation.gops_per_watt()
                );
            }
        }
        println!();
    }

    // Summarize the design-space takeaway the paper draws: RC + LFSR reversion is the sweet spot.
    let cmp = report.comparison(ModelKind::LeNet.paper_name(), 16);
    let best = cmp
        .evaluations
        .iter()
        .min_by(|a, b| a.energy_mj().partial_cmp(&b.energy_mj()).unwrap())
        .unwrap();
    println!(
        "lowest-energy design for B-LeNet at S=16: {} ({:.1} mJ)",
        best.design.name(),
        best.energy_mj()
    );
}
