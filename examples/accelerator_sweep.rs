//! Accelerator sweep: evaluate every paper model on every accelerator design across a range of
//! Monte-Carlo sample counts and print energy, latency, DRAM traffic and efficiency — the
//! exploration a system designer would run before choosing a deployment point.
//!
//! Run with: `cargo run --release --example accelerator_sweep`

use bnn_models::ModelKind;
use shift_bnn::compare::DesignComparison;
use shift_bnn::designs::DesignKind;

fn main() {
    let sample_counts = [8usize, 16, 32];
    println!(
        "{:<12} {:>4} {:>12} {:>14} {:>14} {:>16} {:>14}",
        "model", "S", "design", "energy (mJ)", "latency (ms)", "DRAM (MValues)", "GOPS/W"
    );
    for kind in ModelKind::all() {
        let model = kind.bnn();
        for &samples in &sample_counts {
            let comparison = DesignComparison::run(&model, samples, &DesignKind::all());
            for evaluation in &comparison.evaluations {
                println!(
                    "{:<12} {:>4} {:>12} {:>14.2} {:>14.3} {:>16.1} {:>14.1}",
                    kind.paper_name(),
                    samples,
                    evaluation.design.name(),
                    evaluation.energy_mj(),
                    evaluation.latency_s() * 1e3,
                    evaluation.dram_accesses() as f64 / 1e6,
                    evaluation.gops_per_watt()
                );
            }
        }
        println!();
    }

    // Summarize the design-space takeaway the paper draws: RC + LFSR reversion is the sweet spot.
    let model = ModelKind::LeNet.bnn();
    let cmp = DesignComparison::run(&model, 16, &DesignKind::all());
    let best = cmp
        .evaluations
        .iter()
        .min_by(|a, b| a.energy_mj().partial_cmp(&b.energy_mj()).unwrap())
        .unwrap();
    println!(
        "lowest-energy design for B-LeNet at S=16: {} ({:.1} mJ)",
        best.design.name(),
        best.energy_mj()
    );
}
