//! End-to-end integration tests spanning the whole workspace: LFSR → GRNG → BNN training →
//! workload → accelerator simulation → checkpoint store → cluster serving, exercised through
//! the public APIs only.

use bnn_models::workload::ModelVolume;
use bnn_models::ModelKind;
use bnn_serve::{
    BatchPolicy, Cluster, ClusterConfig, FaultEvent, FaultPlan, InferenceEngine, RequestOutcome,
    RetryPolicy, RoutingPolicy, ServeMode, ShardSwap, VersionSwap, WorkloadSpec,
};
use bnn_store::{Checkpoint, ModelRegistry};
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn::compare::DesignComparison;
use shift_bnn::designs::DesignKind;
use shift_bnn::evaluate::{evaluate, evaluate_gpu};
use shift_bnn::scalability::{sweep_samples, FIG13_SAMPLE_COUNTS};

/// The paper's headline claim chain, end to end: training with LFSR retrieval is bit-exact, and
/// the accelerator built around it eliminates all ε traffic, which translates into energy,
/// latency, efficiency and footprint wins on every model.
#[test]
fn headline_claims_hold_end_to_end() {
    // Algorithmic side: bit-exact training on a small B-LeNet-style network.
    let dataset = SyntheticDataset::generate(&[1, 8, 8], 3, 6, 0.2, 5);
    let mut trainers: Vec<Trainer> = [EpsilonStrategy::StoreReplay, EpsilonStrategy::LfsrRetrieve]
        .into_iter()
        .map(|strategy| {
            let mut rng = StdRng::seed_from_u64(17);
            let network = Network::bayes_lenet(&[1, 8, 8], 3, BayesConfig::default(), &mut rng);
            Trainer::new(
                network,
                TrainerConfig { samples: 2, learning_rate: 0.05, strategy, seed: 23 },
            )
            .unwrap()
        })
        .collect();
    for _ in 0..3 {
        let a = trainers[0].train_epoch(&dataset).unwrap();
        let b = trainers[1].train_epoch(&dataset).unwrap();
        assert_eq!(a, b);
    }
    assert_eq!(trainers[1].stored_epsilons(), 0);

    // Architectural side: every model wins on every headline metric at S = 16.
    for kind in ModelKind::all() {
        let model = kind.bnn();
        let cmp = DesignComparison::run(&model, 16, &DesignKind::all());
        let rc = cmp.of(DesignKind::RcAcc);
        let shift = cmp.of(DesignKind::ShiftBnn);
        assert_eq!(shift.report.dram_traffic.epsilon, 0, "{}", kind.paper_name());
        assert!(rc.report.dram_traffic.epsilon > 0);
        assert!(shift.energy_mj() < rc.energy_mj());
        assert!(shift.latency_s() <= rc.latency_s());
        assert!(shift.gops_per_watt() > rc.gops_per_watt());
        assert!(shift.footprint_bytes() < rc.footprint_bytes());
    }
}

/// The simulator's ε traffic is consistent with the workload accounting: the baseline moves
/// 3 × S × weights ε values (store + two fetches) and the Shift designs move none.
#[test]
fn epsilon_traffic_matches_workload_accounting() {
    for kind in [ModelKind::Mlp, ModelKind::LeNet, ModelKind::Vgg16] {
        let model = kind.bnn();
        let samples = 16;
        let volume = ModelVolume::for_model(&model, samples);
        let baseline = evaluate(DesignKind::RcAcc, &model, samples);
        assert_eq!(
            baseline.report.dram_traffic.epsilon,
            3 * volume.total_epsilon_values(),
            "{}",
            kind.paper_name()
        );
        let shift = evaluate(DesignKind::ShiftBnn, &model, samples);
        assert_eq!(shift.report.dram_traffic.epsilon, 0);
    }
}

/// Scalability: the benefit grows with the sample count, and at every point Shift-BNN is at
/// least as efficient as MNShift-Acc (Fig. 13's two claims).
#[test]
fn scalability_trends_match_figure_13() {
    let points = sweep_samples(&ModelKind::LeNet.bnn(), &FIG13_SAMPLE_COUNTS);
    assert!(
        points.first().unwrap().shift_energy_reduction
            < points.last().unwrap().shift_energy_reduction
    );
    for p in &points {
        assert!(p.shift_efficiency >= p.mnshift_efficiency);
    }
}

/// The GPU comparison point behaves like the paper describes: it can beat the baseline
/// accelerator on the large models, but Shift-BNN still beats it on energy efficiency.
#[test]
fn gpu_comparison_matches_figure_12_shape() {
    for kind in ModelKind::all() {
        let model = kind.bnn();
        let (gpu, gpu_report) = evaluate_gpu(&model, 16);
        let shift = evaluate(DesignKind::ShiftBnn, &model, 16);
        let gpu_eff = gpu_report.gops_per_watt(gpu.sustained_power_w);
        assert!(
            shift.gops_per_watt() > gpu_eff,
            "{}: Shift-BNN {} vs GPU {}",
            kind.paper_name(),
            shift.gops_per_watt(),
            gpu_eff
        );
    }
}

/// The serving lifecycle at cluster scale: train a posterior, publish two versions to the
/// [`ModelRegistry`], serve the registry-loaded v1 through the sharded cluster router, and
/// hot-swap one shard to v2 mid-trace. The swapped shard must behave exactly like a
/// standalone [`InferenceEngine::run_with_swaps`] over the sub-trace the router admitted to
/// it — same answers before the swap boundary, same answers after, same batch versioning.
#[test]
fn cluster_serves_registry_versions_across_a_hot_swap() {
    const INPUT: [usize; 3] = [1, 8, 8];

    // Train v1, publish, keep training, publish v2.
    let dataset = SyntheticDataset::generate(&INPUT, 3, 4, 0.2, 31);
    let mut rng = StdRng::seed_from_u64(67);
    let network = Network::bayes_lenet(&INPUT, 3, BayesConfig::default(), &mut rng);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig { samples: 2, learning_rate: 0.05, ..TrainerConfig::default() },
    )
    .unwrap();
    trainer.train_epoch(&dataset).unwrap();
    let root = std::path::Path::new("target/tmp/end_to_end-cluster-registry");
    let _ = std::fs::remove_dir_all(root);
    let registry = ModelRegistry::open(root).unwrap();
    let v1 = registry.publish("blenet", &Checkpoint::from_trainer(&trainer)).unwrap();
    trainer.train_epoch(&dataset).unwrap();
    let v2 = registry.publish("blenet", &Checkpoint::from_trainer(&trainer)).unwrap();
    assert!(v2 > v1);

    // Serve v1 on a 2-shard cluster; shard 1 hot-swaps to v2 mid-trace.
    let (_, v1_source) = registry.serve_source("blenet", Some(v1), INPUT.to_vec()).unwrap();
    let (_, v2_source) = registry.serve_source("blenet", Some(v2), INPUT.to_vec()).unwrap();
    let trace = WorkloadSpec::uniform(18, 4, 3, 77).generate_for_shape(&INPUT);
    let batch = BatchPolicy { max_batch: 3, max_wait_ticks: 6 };
    let swap_tick = 90;
    let cluster = Cluster::new(ClusterConfig {
        source: v1_source.clone(),
        mode: ServeMode::MonteCarlo,
        shards: 2,
        workers_per_shard: 2,
        batch,
        queue_cap: 64, // roomy: this test is about versioning, not shedding
        deadline_ticks: None,
        routing: RoutingPolicy::LeastLoaded,
        autoscale: None,
    });
    let swaps = [ShardSwap {
        shard: 1,
        swap: VersionSwap { at_tick: swap_tick, source: v2_source.clone() },
    }];
    let report = cluster.run_with_swaps(&trace, &swaps);
    assert!(report.sheds.is_empty(), "nothing sheds under a cap of 64");

    // The un-swapped shard serves v1 throughout; the swapped one crosses the boundary.
    assert!(report.shard_reports[0].batches.iter().all(|b| b.version == 0));
    let versions: Vec<usize> = report.shard_reports[1].batches.iter().map(|b| b.version).collect();
    assert!(versions.contains(&0) && versions.contains(&1), "swap must land mid-trace");
    for batch_stat in &report.shard_reports[1].batches {
        let expected = usize::from(batch_stat.start_tick >= swap_tick);
        assert_eq!(batch_stat.version, expected, "version flips exactly at the swap boundary");
    }

    // The swapped shard answers exactly like a standalone engine over its routed sub-trace,
    // before and after the boundary alike.
    let sub_trace: Vec<_> = trace
        .iter()
        .zip(&report.outcomes)
        .filter_map(|(request, outcome)| match outcome {
            RequestOutcome::Answered { shard: 1, .. } => Some(request.clone()),
            _ => None,
        })
        .collect();
    assert!(!sub_trace.is_empty());
    let engine = InferenceEngine::from_source(v1_source, batch, 1);
    let solo =
        engine.run_with_swaps(&sub_trace, &[VersionSwap { at_tick: swap_tick, source: v2_source }]);
    assert_eq!(
        solo.to_json().to_pretty(),
        report.shard_reports[1].to_json().to_pretty(),
        "cluster shard 1 diverged from a standalone hot-swapped engine"
    );
}

/// The robustness chain end to end: train → publish v1 and v2, corrupt v2's bytes on disk,
/// and the registry's fallback serves v1 instead of failing; a 2-shard cluster built on
/// that fallback then rides out a mid-trace crash/recovery cycle with zero lost answers —
/// every evicted request is retried onto the surviving shard and answered.
#[test]
fn corrupt_checkpoint_falls_back_and_the_cluster_rides_out_a_crash() {
    const INPUT: [usize; 3] = [1, 8, 8];

    // Train v1, publish, keep training, publish v2 — then corrupt v2 at rest (bit-flip in
    // the middle of the payload, past the header so the checksum is what catches it).
    let dataset = SyntheticDataset::generate(&INPUT, 3, 4, 0.2, 31);
    let mut rng = StdRng::seed_from_u64(67);
    let network = Network::bayes_lenet(&INPUT, 3, BayesConfig::default(), &mut rng);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig { samples: 2, learning_rate: 0.05, ..TrainerConfig::default() },
    )
    .unwrap();
    trainer.train_epoch(&dataset).unwrap();
    let root = std::path::Path::new("target/tmp/end_to_end-chaos-registry");
    let _ = std::fs::remove_dir_all(root);
    let registry = ModelRegistry::open(root).unwrap();
    let v1_checkpoint = Checkpoint::from_trainer(&trainer);
    let v1 = registry.publish("blenet", &v1_checkpoint).unwrap();
    trainer.train_epoch(&dataset).unwrap();
    let v2 = registry.publish("blenet", &Checkpoint::from_trainer(&trainer)).unwrap();
    let v2_path = registry.checkpoint_path("blenet", v2).unwrap();
    let mut bytes = std::fs::read(&v2_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&v2_path, bytes).unwrap();

    // The registry skips the corrupt newest version and lands on v1 — and the un-pinned
    // serving path inherits exactly that fallback.
    let (version, loaded, skipped) = registry.load_latest_valid("blenet").unwrap();
    assert_eq!(version, v1);
    assert_eq!(skipped, vec![v2]);
    assert_eq!(loaded.digest(), v1_checkpoint.digest());
    let (served, source) = registry.serve_source("blenet", None, INPUT.to_vec()).unwrap();
    assert_eq!(served, v1, "serving must fall back to the last valid version");

    // Serve through a 2-shard cluster that loses shard 0 mid-trace and recovers it later.
    // The roomy queue and generous retry budget make downtime the only threat: the gate is
    // zero lost answers.
    let trace = WorkloadSpec::uniform(18, 4, 3, 77).generate_for_shape(&INPUT);
    let cluster = Cluster::new(ClusterConfig {
        source,
        mode: ServeMode::MonteCarlo,
        shards: 2,
        workers_per_shard: 2,
        batch: BatchPolicy { max_batch: 3, max_wait_ticks: 6 },
        queue_cap: 64,
        deadline_ticks: None,
        routing: RoutingPolicy::LeastLoaded,
        autoscale: None,
    });
    let faults = FaultPlan::new(vec![
        FaultEvent::ShardDown { tick: 20, shard: 0 },
        FaultEvent::ShardUp { tick: 48, shard: 0 },
    ])
    .with_retry(RetryPolicy { base_backoff_ticks: 8, max_backoff_ticks: 64, max_retries: 4 });
    let report = cluster.run_with_faults(&trace, &[], &faults);
    assert!(report.sheds.is_empty(), "a crash with retries and a roomy queue loses nothing");
    assert_eq!(report.answered(), report.submitted());
    assert!((report.availability() - 1.0).abs() < 1e-12);
    assert!(
        !report.faults.retries.is_empty(),
        "the crash at tick 20 must evict an open batch into failover"
    );
    for event in &report.faults.retries {
        assert_eq!(event.shard, Some(0), "only the crashed shard evicts");
    }
}

/// Full-model coverage: the four designs produce internally consistent reports (per-layer
/// latencies sum to the total, traffic fractions sum to one) for every paper model.
#[test]
fn reports_are_internally_consistent_for_all_models_and_designs() {
    for kind in ModelKind::all() {
        let model = kind.bnn();
        for design in DesignKind::all() {
            let evaluation = evaluate(design, &model, 8);
            let report = &evaluation.report;
            let layer_sum: u64 = report.layers.iter().map(|l| l.latency_cycles()).sum();
            assert_eq!(layer_sum, report.latency_cycles);
            let (w, e, f) = report.dram_traffic.fractions();
            assert!((w + e + f - 1.0).abs() < 1e-9);
            assert_eq!(report.layers.len(), model.layer_count());
            assert!(report.total_macs > 0);
        }
    }
}
