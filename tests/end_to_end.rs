//! End-to-end integration tests spanning the whole workspace: LFSR → GRNG → BNN training →
//! workload → accelerator simulation, exercised through the public APIs only.

use bnn_models::workload::ModelVolume;
use bnn_models::ModelKind;
use bnn_train::data::SyntheticDataset;
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shift_bnn::compare::DesignComparison;
use shift_bnn::designs::DesignKind;
use shift_bnn::evaluate::{evaluate, evaluate_gpu};
use shift_bnn::scalability::{sweep_samples, FIG13_SAMPLE_COUNTS};

/// The paper's headline claim chain, end to end: training with LFSR retrieval is bit-exact, and
/// the accelerator built around it eliminates all ε traffic, which translates into energy,
/// latency, efficiency and footprint wins on every model.
#[test]
fn headline_claims_hold_end_to_end() {
    // Algorithmic side: bit-exact training on a small B-LeNet-style network.
    let dataset = SyntheticDataset::generate(&[1, 8, 8], 3, 6, 0.2, 5);
    let mut trainers: Vec<Trainer> = [EpsilonStrategy::StoreReplay, EpsilonStrategy::LfsrRetrieve]
        .into_iter()
        .map(|strategy| {
            let mut rng = StdRng::seed_from_u64(17);
            let network = Network::bayes_lenet(&[1, 8, 8], 3, BayesConfig::default(), &mut rng);
            Trainer::new(
                network,
                TrainerConfig { samples: 2, learning_rate: 0.05, strategy, seed: 23 },
            )
            .unwrap()
        })
        .collect();
    for _ in 0..3 {
        let a = trainers[0].train_epoch(&dataset).unwrap();
        let b = trainers[1].train_epoch(&dataset).unwrap();
        assert_eq!(a, b);
    }
    assert_eq!(trainers[1].stored_epsilons(), 0);

    // Architectural side: every model wins on every headline metric at S = 16.
    for kind in ModelKind::all() {
        let model = kind.bnn();
        let cmp = DesignComparison::run(&model, 16, &DesignKind::all());
        let rc = cmp.of(DesignKind::RcAcc);
        let shift = cmp.of(DesignKind::ShiftBnn);
        assert_eq!(shift.report.dram_traffic.epsilon, 0, "{}", kind.paper_name());
        assert!(rc.report.dram_traffic.epsilon > 0);
        assert!(shift.energy_mj() < rc.energy_mj());
        assert!(shift.latency_s() <= rc.latency_s());
        assert!(shift.gops_per_watt() > rc.gops_per_watt());
        assert!(shift.footprint_bytes() < rc.footprint_bytes());
    }
}

/// The simulator's ε traffic is consistent with the workload accounting: the baseline moves
/// 3 × S × weights ε values (store + two fetches) and the Shift designs move none.
#[test]
fn epsilon_traffic_matches_workload_accounting() {
    for kind in [ModelKind::Mlp, ModelKind::LeNet, ModelKind::Vgg16] {
        let model = kind.bnn();
        let samples = 16;
        let volume = ModelVolume::for_model(&model, samples);
        let baseline = evaluate(DesignKind::RcAcc, &model, samples);
        assert_eq!(
            baseline.report.dram_traffic.epsilon,
            3 * volume.total_epsilon_values(),
            "{}",
            kind.paper_name()
        );
        let shift = evaluate(DesignKind::ShiftBnn, &model, samples);
        assert_eq!(shift.report.dram_traffic.epsilon, 0);
    }
}

/// Scalability: the benefit grows with the sample count, and at every point Shift-BNN is at
/// least as efficient as MNShift-Acc (Fig. 13's two claims).
#[test]
fn scalability_trends_match_figure_13() {
    let points = sweep_samples(&ModelKind::LeNet.bnn(), &FIG13_SAMPLE_COUNTS);
    assert!(
        points.first().unwrap().shift_energy_reduction
            < points.last().unwrap().shift_energy_reduction
    );
    for p in &points {
        assert!(p.shift_efficiency >= p.mnshift_efficiency);
    }
}

/// The GPU comparison point behaves like the paper describes: it can beat the baseline
/// accelerator on the large models, but Shift-BNN still beats it on energy efficiency.
#[test]
fn gpu_comparison_matches_figure_12_shape() {
    for kind in ModelKind::all() {
        let model = kind.bnn();
        let (gpu, gpu_report) = evaluate_gpu(&model, 16);
        let shift = evaluate(DesignKind::ShiftBnn, &model, 16);
        let gpu_eff = gpu_report.gops_per_watt(gpu.sustained_power_w);
        assert!(
            shift.gops_per_watt() > gpu_eff,
            "{}: Shift-BNN {} vs GPU {}",
            kind.paper_name(),
            shift.gops_per_watt(),
            gpu_eff
        );
    }
}

/// Full-model coverage: the four designs produce internally consistent reports (per-layer
/// latencies sum to the total, traffic fractions sum to one) for every paper model.
#[test]
fn reports_are_internally_consistent_for_all_models_and_designs() {
    for kind in ModelKind::all() {
        let model = kind.bnn();
        for design in DesignKind::all() {
            let evaluation = evaluate(design, &model, 8);
            let report = &evaluation.report;
            let layer_sum: u64 = report.layers.iter().map(|l| l.latency_cycles()).sum();
            assert_eq!(layer_sum, report.latency_cycles);
            let (w, e, f) = report.dram_traffic.fractions();
            assert!((w + e + f - 1.0).abs() < 1e-9);
            assert_eq!(report.layers.len(), model.layer_count());
            assert!(report.total_macs > 0);
        }
    }
}
