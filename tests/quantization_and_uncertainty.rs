//! Integration tests for the training-quality experiments: the Table 1 precision trend and the
//! predictive-uncertainty property that motivates BNNs.

use bnn_tensor::Precision;
use bnn_train::data::SyntheticDataset;
use bnn_train::epsilon::{EpsilonSource, LfsrRetrieve};
use bnn_train::network::Network;
use bnn_train::trainer::{EpsilonStrategy, Trainer, TrainerConfig};
use bnn_train::variational::BayesConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_mlp(precision: Precision, epochs: usize) -> (Trainer, SyntheticDataset) {
    let dataset = SyntheticDataset::generate(&[32], 3, 12, 0.2, 44);
    let mut rng = StdRng::seed_from_u64(8);
    let config =
        BayesConfig { kl_weight: 1e-3, ..BayesConfig::default() }.with_precision(precision);
    let network = Network::bayes_mlp(32, &[24], 3, config, &mut rng);
    let mut trainer = Trainer::new(
        network,
        TrainerConfig {
            samples: 2,
            learning_rate: 0.08,
            strategy: EpsilonStrategy::LfsrRetrieve,
            seed: 4,
        },
    )
    .unwrap();
    for _ in 0..epochs {
        trainer.train_epoch(&dataset).unwrap();
    }
    (trainer, dataset)
}

#[test]
fn sixteen_bit_training_tracks_fp32_within_a_few_points() {
    let (mut t32, data) = train_mlp(Precision::Fp32, 10);
    let (mut t16, _) = train_mlp(Precision::PAPER_16BIT, 10);
    let a32 = t32.evaluate(&data).unwrap();
    let a16 = t16.evaluate(&data).unwrap();
    assert!(a32 > 0.7, "fp32 accuracy {a32}");
    assert!((a32 - a16).abs() < 0.25, "16-bit should track fp32: {a16} vs {a32}");
}

#[test]
fn eight_bit_training_never_beats_sixteen_bit() {
    let (mut t16, data) = train_mlp(Precision::PAPER_16BIT, 10);
    let (mut t8, _) = train_mlp(Precision::PAPER_8BIT, 10);
    let a16 = t16.evaluate(&data).unwrap();
    let a8 = t8.evaluate(&data).unwrap();
    assert!(a8 <= a16 + 1e-9, "8-bit {a8} vs 16-bit {a16}");
}

#[test]
fn predictive_entropy_is_higher_out_of_distribution() {
    let (mut trainer, data) = train_mlp(Precision::Fp32, 12);
    let sources = |seed: u64| -> Vec<Box<dyn EpsilonSource>> {
        (0..8)
            .map(|i| Box::new(LfsrRetrieve::new(seed + i).unwrap()) as Box<dyn EpsilonSource>)
            .collect()
    };
    let (in_image, _) = data.example(0);
    let mut s = sources(500);
    let in_probs = trainer.network_mut().predict(in_image, &mut s).unwrap();
    let in_entropy = Network::predictive_entropy(&in_probs);

    let ood = SyntheticDataset::out_of_distribution(&[32], 5, 99);
    let mut total_ood_entropy = 0.0f32;
    for image in &ood {
        let mut s = sources(900);
        let probs = trainer.network_mut().predict(image, &mut s).unwrap();
        total_ood_entropy += Network::predictive_entropy(&probs);
    }
    let ood_entropy = total_ood_entropy / ood.len() as f32;
    assert!(
        ood_entropy > in_entropy,
        "expected higher uncertainty out of distribution: {ood_entropy} vs {in_entropy}"
    );
}
